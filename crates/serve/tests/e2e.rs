//! End-to-end tests: a real daemon on an ephemeral port, driven over
//! real sockets through the client library (and, in one test, through
//! the actual `esteem-serve`/`esteem-client` binaries).
//!
//! Each test runs its own daemon. Specs use per-test seeds so their
//! run-cache fingerprints never collide across tests (the run cache is
//! process-global); colliding on purpose is exactly what the dedupe
//! tests do.

use std::time::Duration;

use esteem_core::Simulator;
use esteem_serve::{client, spawn, JobSpec, ServerOptions};
use serde::{map_get, Deserialize, Serialize, Value};

fn opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        ..ServerOptions::default()
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        workload: "gamess".into(),
        instructions: 200_000,
        seed,
        ..JobSpec::default()
    }
}

#[test]
fn submit_poll_fetch_matches_cli_path_byte_for_byte() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();

    let spec = spec(0xE2E1);
    let resp = client::submit(&addr, &spec).unwrap();
    assert!(!resp.coalesced);
    let result = client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let via_daemon = serde_json::to_string_pretty(&result).unwrap();

    // The CLI path: resolve the same options and run the simulator
    // directly, printing with the same pretty serializer as
    // `esteem-sim --json`.
    let r = spec.resolve().unwrap();
    let report = Simulator::new(r.cfg, &r.profiles, &r.label).run();
    let via_cli = serde_json::to_string_pretty(&report.to_value()).unwrap();

    assert_eq!(via_daemon, via_cli, "daemon result must be byte-identical");

    daemon.shutdown();
    assert!(daemon.wait());
}

#[test]
fn duplicate_inflight_submissions_coalesce_to_one_execution() {
    let daemon = spawn(ServerOptions {
        start_paused: true,
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();

    let spec = spec(0xE2E2);
    let first = client::submit(&addr, &spec).unwrap();
    assert!(!first.coalesced && !first.cached);
    // Scheduler is paused, so the first submission is still queued:
    // identical specs must coalesce onto it, not run again.
    let second = client::submit(&addr, &spec).unwrap();
    assert!(second.coalesced, "identical in-flight spec must coalesce");
    assert_eq!(
        second.job, first.job,
        "coalesced submit returns the primary id"
    );

    daemon.resume();
    let a = client::fetch(&addr, first.job, Duration::from_millis(20)).unwrap();
    let b = client::fetch(&addr, second.job, Duration::from_millis(20)).unwrap();
    assert_eq!(a, b);

    // Counters prove a single execution: one coalesce recorded, exactly
    // one job completed (the primary), nothing else submitted or run.
    assert_eq!(
        daemon
            .counters()
            .coalesced
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        daemon
            .counters()
            .submitted
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        daemon
            .counters()
            .completed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn resubmitting_a_finished_config_is_served_from_the_run_cache() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let spec = spec(0xE2E3);
    let first = client::submit(&addr, &spec).unwrap();
    client::fetch(&addr, first.job, Duration::from_millis(20)).unwrap();
    let again = client::submit(&addr, &spec).unwrap();
    assert!(again.cached, "finished config must be a run-cache hit");
    assert_ne!(
        again.job, first.job,
        "cached submit still gets its own job id"
    );
    let (state, _) = client::poll(&addr, again.job).unwrap();
    assert_eq!(state, "done");
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn panicking_simulation_fails_the_job_but_daemon_keeps_serving() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();

    // a_min = 0 violates the configuration invariants; the simulator's
    // validation panics inside the worker.
    let bad = JobSpec {
        a_min: 0,
        ..spec(0xE2E4)
    };
    let resp = client::submit(&addr, &bad).unwrap();
    let err = client::fetch(&addr, resp.job, Duration::from_millis(20))
        .expect_err("invalid config must fail the job");
    assert!(err.contains("failed"), "got: {err}");
    let (state, v) = client::poll(&addr, resp.job).unwrap();
    assert_eq!(state, "failed");
    let error = v
        .as_map()
        .and_then(|m| map_get(m, "error").ok())
        .and_then(|e| e.as_str())
        .unwrap_or_default()
        .to_owned();
    assert!(!error.is_empty(), "failed job must carry the panic message");

    // The daemon survived: a good job on the same daemon completes.
    let good = client::submit(&addr, &spec(0xE2E5)).unwrap();
    client::fetch(&addr, good.job, Duration::from_millis(20)).unwrap();
    assert_eq!(
        daemon
            .counters()
            .failed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn full_queue_sheds_with_429() {
    let daemon = spawn(ServerOptions {
        queue_capacity: 1,
        start_paused: true,
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    client::submit(&addr, &spec(0xE2E6)).unwrap();
    let err = client::submit(&addr, &spec(0xE2E7)).expect_err("second submit must shed");
    assert!(
        err.contains("429") && err.contains("queue full"),
        "got: {err}"
    );
    assert_eq!(
        daemon
            .counters()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    daemon.resume();
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn events_stream_carries_interval_samples() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    // Short reconfiguration interval so a small run still emits several
    // interval records.
    let spec = JobSpec {
        interval: 100_000,
        instructions: 1_000_000,
        ..spec(0xE2E8)
    };
    let resp = client::submit(&addr, &spec).unwrap();
    let mut lines = Vec::new();
    let status = client::stream_lines(&addr, &format!("/v1/jobs/{}/events", resp.job), |l| {
        lines.push(l.to_owned());
    })
    .unwrap();
    assert_eq!(status, 200);
    assert!(!lines.is_empty(), "expected at least one interval sample");
    for line in &lines {
        let v: Value = serde_json::from_str(line).unwrap();
        let m = v.as_map().expect("sample is an object");
        assert!(map_get(m, "cycle").is_ok() && map_get(m, "refreshes").is_ok());
    }
    // The stream ended because the job finished.
    let (state, _) = client::poll(&addr, resp.job).unwrap();
    assert_eq!(state, "done");
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn metrics_exposes_serve_runcache_and_http_counters() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2E9)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let text = client::metrics(&addr).unwrap();
    for needle in [
        "serve/jobs_submitted 1",
        "serve/jobs_completed 1",
        "serve/queue_depth",
        "runcache/hits",
        "runcache/misses",
        "http/requests",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn trace_spans_cover_queue_wait_cache_and_run() {
    use esteem_trace::TraceEvent;
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2EA)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let names: Vec<String> = daemon
        .trace_events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Span { name, .. } => Some(name),
            _ => None,
        })
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with("queue_wait")),
        "queue-wait span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "job.cache_lookup"),
        "cache-lookup span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "job.run"),
        "run span missing: {names:?}"
    );
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn journal_recovery_restores_done_jobs_and_requeues_unfinished() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    // First daemon: complete one job, then shut down.
    let done_spec = spec(0xE2EB);
    let first_id = {
        let daemon = spawn(ServerOptions {
            journal_path: Some(journal.clone()),
            ..opts()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let resp = client::submit(&addr, &done_spec).unwrap();
        client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
        daemon.shutdown();
        daemon.wait();
        resp.job
    };

    // Simulate a crash with one accepted-but-unfinished job: append its
    // submit record by hand (as a crashed daemon would have left it).
    let unfinished_spec = spec(0xE2EC);
    let unfinished_id = first_id + 10;
    {
        let j = esteem_serve::Journal::open(&journal).unwrap();
        let fp = unfinished_spec.resolve().unwrap().fingerprint;
        j.submit(unfinished_id, fp, &unfinished_spec);
        j.start(unfinished_id);
    }

    // Second daemon on the same journal: the done job is restored, the
    // unfinished one is re-queued and runs to completion.
    let daemon = spawn(ServerOptions {
        journal_path: Some(journal.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    assert!(
        daemon
            .counters()
            .recovered
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );
    let (state, v) = client::poll(&addr, first_id).unwrap();
    assert_eq!(state, "done", "finished job must survive the restart");
    assert!(
        v.as_map()
            .map(|m| map_get(m, "result").is_ok())
            .unwrap_or(false),
        "restored job must carry its result"
    );
    let recovered = client::fetch(&addr, unfinished_id, Duration::from_millis(20)).unwrap();
    let expected = {
        let r = unfinished_spec.resolve().unwrap();
        Simulator::new(r.cfg, &r.profiles, &r.label)
            .run()
            .to_value()
    };
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "re-run recovered job reproduces the identical report"
    );
    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption injection: clobber a line in the *middle* of the journal
/// (with non-UTF-8 bytes, the nastiest case) and restart. The daemon must
/// boot, count the skipped line, and still recover every intact record.
#[test]
fn journal_recovery_survives_corrupt_middle_line() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    // First daemon: run two jobs to completion, producing at least
    // submit/start/done triples for each.
    let spec_a = spec(0xE2ED);
    let spec_b = spec(0xE2EE);
    let (id_a, id_b) = {
        let daemon = spawn(ServerOptions {
            journal_path: Some(journal.clone()),
            ..opts()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let ra = client::submit(&addr, &spec_a).unwrap();
        client::fetch(&addr, ra.job, Duration::from_millis(20)).unwrap();
        let rb = client::submit(&addr, &spec_b).unwrap();
        client::fetch(&addr, rb.job, Duration::from_millis(20)).unwrap();
        daemon.shutdown();
        daemon.wait();
        (ra.job, rb.job)
    };

    // Clobber job A's `done` line in place with invalid UTF-8, leaving
    // every other line (including job B's whole history) intact.
    let bytes = std::fs::read(&journal).unwrap();
    let needle = format!("\"event\":\"done\",\"job\":{id_a}");
    let mut out = Vec::new();
    let mut clobbered = false;
    for line in bytes.split(|&b| b == b'\n') {
        if !clobbered && String::from_utf8_lossy(line).contains(&needle) {
            out.extend(vec![0xFE_u8; line.len()]);
            clobbered = true;
        } else {
            out.extend_from_slice(line);
        }
        out.push(b'\n');
    }
    assert!(clobbered, "done record for job {id_a} not found in journal");
    std::fs::write(&journal, out).unwrap();

    // Second daemon: boots despite the corruption, reports the skipped
    // line, keeps job B done, and re-queues job A (its `done` was lost,
    // so it replays as unfinished) to the identical deterministic result.
    let daemon = spawn(ServerOptions {
        journal_path: Some(journal.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    assert_eq!(
        daemon
            .counters()
            .journal_skipped
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "exactly the clobbered line is skipped"
    );
    let (state_b, _) = client::poll(&addr, id_b).unwrap();
    assert_eq!(state_b, "done", "intact job must survive the corruption");
    let report_a = client::fetch(&addr, id_a, Duration::from_millis(20)).unwrap();
    let expected = {
        let r = spec_a.resolve().unwrap();
        Simulator::new(r.cfg, &r.profiles, &r.label)
            .run()
            .to_value()
    };
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "re-run of the job with the lost `done` reproduces its report"
    );
    let text = client::metrics(&addr).unwrap();
    assert!(
        text.contains("journal_skipped_lines"),
        "skipped-line counter must be exported in /metrics:\n{text}"
    );
    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_specs_and_bad_routes_get_clean_errors() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    // Unknown workload.
    let err = client::submit(
        &addr,
        &JobSpec {
            workload: "not-a-benchmark".into(),
            ..JobSpec::default()
        },
    )
    .expect_err("unknown workload rejected");
    assert!(err.contains("400"), "got: {err}");
    // Unknown field in the spec body.
    let (status, body) = client::request(
        &addr,
        "POST",
        "/v1/jobs",
        Some("{\"workload\":\"gamess\",\"retentoin_us\":40}"),
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("retentoin_us"), "got: {body}");
    // Unknown job id and unknown route.
    let (status, _) = client::request(&addr, "GET", "/v1/jobs/999999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(status, 404);
    // Wrong method.
    let (status, _) = client::request(&addr, "PUT", "/v1/jobs", None).unwrap();
    assert_eq!(status, 405);
    assert_eq!(
        daemon
            .counters()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    daemon.shutdown();
    daemon.wait();
}

/// Inject a known latency population directly into the daemon's stage
/// histograms, then read the percentiles back through `/v1/status`. The
/// histogram's documented bound is 1/64 (~1.6%) relative error.
#[test]
fn status_reports_percentiles_for_injected_latencies() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let m = daemon.serve_metrics();
    for us in 1..=1000u64 {
        m.submit_us.record(us);
    }
    m.record_e2e(esteem_serve::Outcome::Done, "injector", 4096);

    let (status, body) = client::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let stage = |v: &Value, path: &[&str]| -> Value {
        let mut cur = v.clone();
        for p in path {
            cur = cur
                .as_map()
                .and_then(|m| map_get(m, p).ok())
                .unwrap_or_else(|| panic!("missing {p} in {body}"))
                .clone();
        }
        cur
    };
    let num = |v: &Value, key: &str| -> u64 {
        match stage(v, &[key]) {
            Value::U64(n) => n,
            Value::I64(n) => n as u64,
            Value::F64(f) => f as u64,
            other => panic!("{key} is not numeric: {other:?}"),
        }
    };
    let submit = stage(&v, &["stages", "submit_us"]);
    assert_eq!(num(&submit, "count"), 1000);
    // Exact ranks of the uniform 1..=1000 population, with the 1/64
    // relative-error ceiling on the reported bucket upper bound.
    for (q, exact) in [("p50_us", 500u64), ("p95_us", 950), ("p99_us", 990)] {
        let got = num(&submit, q);
        assert!(
            got >= exact && got as f64 <= exact as f64 * (1.0 + 1.0 / 64.0) + 1.0,
            "{q}: got {got}, exact {exact}"
        );
    }
    assert_eq!(num(&submit, "max_us"), 1000);
    let e2e_done = stage(&v, &["e2e_us", "done"]);
    assert_eq!(num(&e2e_done, "count"), 1);
    assert_eq!(num(&e2e_done, "p50_us"), 4096, "4096 sits on a bucket edge");

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn status_and_flight_recorder_cover_a_real_job() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2F0)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();

    let (status, body) = client::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let m = v.as_map().unwrap();
    assert_eq!(
        map_get(m, "version").unwrap().as_str().unwrap(),
        env!("CARGO_PKG_VERSION")
    );
    let workers = map_get(m, "workers").unwrap().as_map().unwrap();
    assert_eq!(map_get(workers, "count").unwrap(), &(2u64.to_value()));
    let per = map_get(workers, "per_worker").unwrap().as_seq().unwrap();
    assert_eq!(per.len(), 2, "one utilization entry per worker");
    let stages = map_get(m, "stages").unwrap().as_map().unwrap();
    for name in [
        "submit_us",
        "queue_wait_us",
        "cache_lookup_us",
        "run_us",
        "serialize_us",
    ] {
        let st = map_get(stages, name).unwrap().as_map().unwrap();
        let count = u64::from_value(map_get(st, "count").unwrap()).unwrap();
        assert!(count >= 1, "stage {name} recorded nothing:\n{body}");
    }

    // The flight recorder holds the job's trip with its stage split.
    let (status, body) = client::request(&addr, "GET", "/v1/flight-recorder", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let jobs = v
        .as_map()
        .and_then(|m| map_get(m, "jobs").ok())
        .and_then(|j| j.as_seq())
        .expect("flight recorder has a jobs array");
    let entry = jobs
        .iter()
        .find(|j| {
            j.as_map()
                .and_then(|m| map_get(m, "job").ok())
                .is_some_and(|id| id == &resp.job.to_value())
        })
        .unwrap_or_else(|| panic!("job {} not in flight recorder:\n{body}", resp.job));
    let em = entry.as_map().unwrap();
    assert_eq!(map_get(em, "outcome").unwrap().as_str().unwrap(), "done");
    let run_us = u64::from_value(map_get(em, "run_us").unwrap()).unwrap();
    let e2e_us = u64::from_value(map_get(em, "e2e_us").unwrap()).unwrap();
    assert!(run_us > 0 && e2e_us >= run_us, "run {run_us}, e2e {e2e_us}");
    // Trace events ride along (non-destructively: the daemon accessor
    // still sees them afterwards).
    assert!(v
        .as_map()
        .and_then(|m| map_get(m, "trace").ok())
        .and_then(|t| t.as_seq())
        .is_some_and(|t| !t.is_empty()));
    assert!(!daemon.trace_events().is_empty());

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn metrics_expose_histograms_build_info_and_content_type() {
    use std::io::{Read as _, Write as _};

    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2F1)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();

    let text = client::metrics(&addr).unwrap();
    for needle in [
        "serve/stage/run_us_bucket{le=\"",
        "serve/stage/run_us_bucket{le=\"+Inf\"}",
        "serve/stage/run_us_count 1",
        "serve/stage/run_us_sum ",
        "serve/stage/e2e_us_bucket{outcome=\"done\",le=\"",
        "serve/uptime_seconds",
        &format!(
            "serve/build_info{{version=\"{}\",git=",
            env!("CARGO_PKG_VERSION")
        ),
        "pool/task_us_count",
        "pool/workers/0/utilization",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The exposition content type (client::request drops headers, so go
    // over a raw socket).
    let mut s = std::net::TcpStream::connect(daemon.addr()).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(
        out.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "exposition content type missing:\n{}",
        out.lines().take(8).collect::<Vec<_>>().join("\n")
    );

    daemon.shutdown();
    daemon.wait();
}

/// A panicking job triggers the crash dump: the flight-recorder body is
/// written to the configured path, with the failed job in it.
#[test]
fn panicking_job_writes_flight_dump() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.json");

    let daemon = spawn(ServerOptions {
        flight_dump: Some(dump.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let bad = JobSpec {
        a_min: 0,
        ..spec(0xE2F2)
    };
    let resp = client::submit(&addr, &bad).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20))
        .expect_err("invalid config must fail the job");

    // The dump lands just after the job turns terminal; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let text = loop {
        match std::fs::read_to_string(&dump) {
            Ok(t) if !t.is_empty() => break t,
            _ if std::time::Instant::now() > deadline => {
                panic!("flight dump never appeared at {}", dump.display())
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let v: Value = serde_json::from_str(&text).unwrap();
    let jobs = v
        .as_map()
        .and_then(|m| map_get(m, "jobs").ok())
        .and_then(|j| j.as_seq())
        .expect("dump has a jobs array");
    assert!(
        jobs.iter().any(|j| {
            j.as_map()
                .is_some_and(|m| map_get(m, "outcome").is_ok_and(|o| o.as_str() == Some("failed")))
        }),
        "failed job missing from dump:\n{text}"
    );

    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The real binaries, end to end: daemon process on an ephemeral port,
/// driven by `esteem-client` submit/poll/fetch/shutdown.
#[test]
fn daemon_and_client_binaries_round_trip() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("esteem-e2e-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_esteem-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
        .to_owned();

    let client_bin = env!("CARGO_BIN_EXE_esteem-client");
    let run = |args: &[&str]| {
        let out = Command::new(client_bin)
            .arg(&addr)
            .args(args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "esteem-client {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let submitted = run(&[
        "submit",
        "--instructions",
        "200000",
        "--seed",
        "60910",
        "gamess",
    ]);
    let id = submitted
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("unexpected submit output: {submitted:?}"))
        .to_owned();
    let fetched = run(&["fetch", &id]);

    // Byte-identity with the CLI path, via the same serializer.
    let expected = {
        let spec = JobSpec {
            workload: "gamess".into(),
            instructions: 200_000,
            seed: 60910,
            ..JobSpec::default()
        };
        let r = spec.resolve().unwrap();
        let report = Simulator::new(r.cfg, &r.profiles, &r.label).run();
        serde_json::to_string_pretty(&report.to_value()).unwrap()
    };
    assert_eq!(fetched.trim_end(), expected);

    let metrics = run(&["metrics"]);
    assert!(
        metrics.contains("serve/jobs_submitted 1"),
        "got:\n{metrics}"
    );

    // The dashboard binary against the live daemon, in one-shot mode.
    let top = Command::new(env!("CARGO_BIN_EXE_esteem-top"))
        .args([addr.as_str(), "--once"])
        .output()
        .unwrap();
    assert!(
        top.status.success(),
        "esteem-top --once failed: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let dash = String::from_utf8(top.stdout).unwrap();
    for needle in [
        "esteem-top —",
        "queue depth",
        "workers",
        "p95",
        "run",
        "e2e done",
    ] {
        assert!(dash.contains(needle), "missing {needle:?} in:\n{dash}");
    }

    run(&["shutdown"]);
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    // The journal artifact exists and records the whole lifecycle.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(journal_text.contains("\"submit\"") && journal_text.contains("\"done\""));
    let _ = std::fs::remove_dir_all(&dir);
}
