//! Admission control for the submit path: per-client token buckets and
//! latency-aware (SLO) shedding.
//!
//! The fixed-cap 429 in [`JobQueue`](crate::queue::JobQueue) only fires
//! once the queue is already full — by then every accepted job is
//! waiting behind the backlog and the SLO is long gone. This module
//! moves the shed decision to the front door:
//!
//! * **Token buckets** ([`AdmissionOptions::rate_per_sec`]) bound each
//!   client's *submit rate* independently, so one flooding client is
//!   throttled while well-behaved ones sail through. Buckets refill
//!   lazily (integer-microsecond arithmetic, no background thread) and
//!   the bucket map is bounded like `MAX_CLIENT_LABELS` in `observe.rs`:
//!   past [`MAX_BUCKETS`] the least-recently-used buckets are evicted.
//! * **SLO shedding** ([`AdmissionOptions::slo_ms`]) watches queue-wait
//!   p95 over a [`SlidingWindow`] of the PR 7 stage histogram. When the
//!   windowed p95 exceeds the target the daemon sheds *before*
//!   enqueueing; once the hot slots rotate out of the window the signal
//!   recovers and admission resumes — engagement is self-clearing, no
//!   operator reset.
//!
//! Every shed carries a retry hint ([`Shed::retry_after_ms`]): the time
//! to the next token for rate sheds, the windowed queue-wait p50 for
//! SLO sheds. The HTTP layer surfaces it as `Retry-After` /
//! `retry-after-ms` headers and [`RetryPolicy`](crate::client::RetryPolicy)
//! honors it, so closed-loop clients back off instead of hammering a
//! saturated daemon.

use std::collections::HashMap;
use std::sync::Mutex;

use esteem_stats::{Histogram, SlidingWindow};

/// Distinct per-client token buckets kept live; beyond this the
/// least-recently-used buckets are evicted (a returning client starts
/// with a full burst again — bounded memory wins over perfect history).
pub const MAX_BUCKETS: usize = 4096;

/// Ceiling on emitted retry hints: a saturated daemon should invite
/// retries within tens of seconds, not park clients for minutes.
const MAX_RETRY_AFTER_MS: u64 = 30_000;

/// Knobs for [`AdmissionControl`]; `..Default::default()` disables both
/// mechanisms (the daemon then sheds only on queue-full, as before).
#[derive(Debug, Clone)]
pub struct AdmissionOptions {
    /// Sustained per-client submit rate (tokens/sec); `None` disables
    /// rate limiting.
    pub rate_per_sec: Option<f64>,
    /// Bucket depth: short bursts up to this many submits are admitted
    /// at full speed before the sustained rate applies.
    pub burst: f64,
    /// Queue-wait p95 target; shed while the windowed p95 exceeds it.
    /// `None` disables SLO shedding.
    pub slo_ms: Option<u64>,
    /// Sliding-window slot duration.
    pub window_slot_ms: u64,
    /// Slots in the window (window span = slots × slot duration).
    pub window_slots: usize,
    /// Minimum queue-wait samples in the window before SLO shedding may
    /// engage (a cold daemon never sheds on noise).
    pub min_window_samples: u64,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        Self {
            rate_per_sec: None,
            burst: 10.0,
            slo_ms: None,
            window_slot_ms: 500,
            window_slots: 4,
            min_window_samples: 8,
        }
    }
}

impl AdmissionOptions {
    /// True when either mechanism is configured.
    pub fn enabled(&self) -> bool {
        self.rate_per_sec.is_some() || self.slo_ms.is_some()
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The client's token bucket is empty.
    RateLimited,
    /// Windowed queue-wait p95 exceeds the SLO target.
    SloBreached,
}

impl ShedReason {
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::SloBreached => "slo_breached",
        }
    }
}

/// A refusal plus the server's retry hint.
#[derive(Debug, Clone, Copy)]
pub struct Shed {
    pub reason: ShedReason,
    pub retry_after_ms: u64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill_us: u64,
    last_access_us: u64,
}

#[derive(Debug)]
struct WindowState {
    window: SlidingWindow,
    last_rotate_us: u64,
    /// Last SLO decision (introspection only).
    engaged: bool,
}

/// The live SLO signal, for `/v1/status`.
#[derive(Debug, Clone, Copy)]
pub struct SloSignal {
    pub window_p95_us: u64,
    pub window_samples: u64,
    pub engaged: bool,
}

/// See the module docs. One instance lives in the server state; both
/// checks run under short internal locks on the submit path.
#[derive(Debug)]
pub struct AdmissionControl {
    opts: AdmissionOptions,
    buckets: Mutex<HashMap<String, Bucket>>,
    window: Mutex<WindowState>,
}

impl AdmissionControl {
    pub fn new(opts: AdmissionOptions) -> Self {
        let window = WindowState {
            window: SlidingWindow::new(opts.window_slots),
            last_rotate_us: 0,
            engaged: false,
        };
        Self {
            opts,
            buckets: Mutex::new(HashMap::new()),
            window: Mutex::new(window),
        }
    }

    pub fn options(&self) -> &AdmissionOptions {
        &self.opts
    }

    /// The front-door decision: SLO first (overload sheds everyone and
    /// consumes no tokens), then the client's bucket. `now_us` is the
    /// daemon's monotone clock (`ServeMetrics::now_us`); `queue_wait`
    /// is the cumulative queue-wait stage histogram.
    pub fn admit(&self, client: &str, now_us: u64, queue_wait: &Histogram) -> Result<(), Shed> {
        if let Some(slo_ms) = self.opts.slo_ms {
            if let Some(shed) = self.check_slo(slo_ms, now_us, queue_wait) {
                return Err(shed);
            }
        }
        if let Some(rate) = self.opts.rate_per_sec {
            if let Some(shed) = self.take_token(client, rate, now_us) {
                return Err(shed);
            }
        }
        Ok(())
    }

    fn check_slo(&self, slo_ms: u64, now_us: u64, queue_wait: &Histogram) -> Option<Shed> {
        let mut w = self.window.lock().unwrap_or_else(|e| e.into_inner());
        let snap = queue_wait.snapshot();
        // Decide against the window as it stood *before* this call's
        // rotation: samples recorded since the last boundary must be
        // visible even if a rotation is due right now.
        let delta = w.window.delta(&snap);
        let breached = delta.count() >= self.opts.min_window_samples
            && delta.quantile(0.95) > slo_ms.saturating_mul(1000);
        w.engaged = breached;
        // Age the window regardless of the decision (shedding must not
        // freeze the signal), one rotation per elapsed slot boundary;
        // idle gaps age the whole window in one go, so a flood that
        // ended long ago cannot keep the daemon shedding.
        let slot_us = self.opts.window_slot_ms.max(1).saturating_mul(1000);
        let due = now_us.saturating_sub(w.last_rotate_us) / slot_us;
        if due > 0 {
            for _ in 0..due.min(self.opts.window_slots as u64 + 1) {
                w.window.rotate(snap.clone());
            }
            w.last_rotate_us += due * slot_us;
        }
        if !breached {
            return None;
        }
        // Invite a retry once roughly half the current backlog has
        // drained: the windowed queue-wait p50.
        let p50_ms = (delta.quantile(0.5) / 1000).clamp(1, MAX_RETRY_AFTER_MS);
        Some(Shed {
            reason: ShedReason::SloBreached,
            retry_after_ms: p50_ms,
        })
    }

    fn take_token(&self, client: &str, rate: f64, now_us: u64) -> Option<Shed> {
        let rate = rate.max(f64::MIN_POSITIVE);
        let burst = self.opts.burst.max(1.0);
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if !buckets.contains_key(client) && buckets.len() >= MAX_BUCKETS {
            Self::evict_lru(&mut buckets);
        }
        let b = buckets.entry(client.to_owned()).or_insert(Bucket {
            tokens: burst,
            last_refill_us: now_us,
            last_access_us: now_us,
        });
        let elapsed_us = now_us.saturating_sub(b.last_refill_us);
        b.tokens = (b.tokens + elapsed_us as f64 * 1e-6 * rate).min(burst);
        b.last_refill_us = now_us;
        b.last_access_us = now_us;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            return None;
        }
        let wait_ms = ((1.0 - b.tokens) / rate * 1000.0).ceil() as u64;
        Some(Shed {
            reason: ShedReason::RateLimited,
            retry_after_ms: wait_ms.clamp(1, MAX_RETRY_AFTER_MS),
        })
    }

    /// Drops the least-recently-used half of the bucket map (amortizes
    /// the O(n) scan the same way the queue's served-map eviction does).
    fn evict_lru(buckets: &mut HashMap<String, Bucket>) {
        let mut by_access: Vec<(u64, String)> = buckets
            .iter()
            .map(|(client, b)| (b.last_access_us, client.clone()))
            .collect();
        by_access.sort_unstable();
        for (_, client) in by_access.into_iter().take(buckets.len() - MAX_BUCKETS / 2) {
            buckets.remove(&client);
        }
    }

    /// Current SLO-signal reading without admitting anything (for
    /// `/v1/status`). Does not rotate the window.
    pub fn slo_signal(&self, queue_wait: &Histogram) -> Option<SloSignal> {
        self.opts.slo_ms?;
        let w = self.window.lock().unwrap_or_else(|e| e.into_inner());
        let delta = w.window.delta(&queue_wait.snapshot());
        Some(SloSignal {
            window_p95_us: delta.quantile(0.95),
            window_samples: delta.count(),
            engaged: w.engaged,
        })
    }

    /// Live token buckets (introspection).
    pub fn bucket_count(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_opts(rate: f64, burst: f64) -> AdmissionOptions {
        AdmissionOptions {
            rate_per_sec: Some(rate),
            burst,
            ..Default::default()
        }
    }

    #[test]
    fn token_bucket_is_per_client() {
        let ac = AdmissionControl::new(rate_opts(1.0, 2.0));
        let h = Histogram::new();
        // Client a burns its burst of 2; the third submit sheds.
        assert!(ac.admit("a", 1_000, &h).is_ok());
        assert!(ac.admit("a", 1_001, &h).is_ok());
        let shed = ac.admit("a", 1_002, &h).unwrap_err();
        assert_eq!(shed.reason, ShedReason::RateLimited);
        assert!(shed.retry_after_ms >= 1);
        // Client b is untouched by a's exhaustion.
        assert!(ac.admit("b", 1_003, &h).is_ok());
    }

    #[test]
    fn bucket_refills_at_rate() {
        let ac = AdmissionControl::new(rate_opts(10.0, 1.0));
        let h = Histogram::new();
        assert!(ac.admit("a", 0, &h).is_ok());
        assert!(ac.admit("a", 1_000, &h).is_err(), "1ms < 100ms/token");
        // ~100ms at 10 tokens/sec refills one token (1ms slack for
        // float rounding in the refill product).
        assert!(ac.admit("a", 102_000, &h).is_ok());
        assert!(ac.admit("a", 103_000, &h).is_err());
    }

    #[test]
    fn rate_shed_hints_time_to_next_token() {
        let ac = AdmissionControl::new(rate_opts(10.0, 1.0));
        let h = Histogram::new();
        assert!(ac.admit("a", 0, &h).is_ok());
        let shed = ac.admit("a", 0, &h).unwrap_err();
        // Empty bucket at 10/s: next token in ~100ms.
        assert!(
            (90..=110).contains(&shed.retry_after_ms),
            "hint {}ms",
            shed.retry_after_ms
        );
    }

    #[test]
    fn bucket_map_is_bounded() {
        let ac = AdmissionControl::new(rate_opts(1.0, 1.0));
        let h = Histogram::new();
        for i in 0..MAX_BUCKETS + 100 {
            let _ = ac.admit(&format!("client-{i}"), i as u64, &h);
        }
        assert!(ac.bucket_count() <= MAX_BUCKETS);
    }

    fn slo_opts(slo_ms: u64) -> AdmissionOptions {
        AdmissionOptions {
            slo_ms: Some(slo_ms),
            window_slot_ms: 100,
            window_slots: 2,
            min_window_samples: 4,
            ..Default::default()
        }
    }

    #[test]
    fn slo_shedding_engages_and_disengages() {
        let ac = AdmissionControl::new(slo_opts(50));
        let h = Histogram::new();
        let mut now = 0u64;
        assert!(ac.admit("a", now, &h).is_ok(), "cold daemon admits");
        // A flood: queue waits far beyond the 50ms SLO.
        for _ in 0..20 {
            h.record(400_000);
        }
        now += 100_000; // one slot later the window sees the flood
        let shed = ac.admit("a", now, &h).unwrap_err();
        assert_eq!(shed.reason, ShedReason::SloBreached);
        assert!(shed.retry_after_ms >= 100, "p50-derived hint");
        // The engaged flag reflects the shed decision; the freshly
        // rotated window may already exclude the flood from its delta.
        assert!(ac.slo_signal(&h).unwrap().engaged);
        // The flood stops; two slot intervals later the hot boundary
        // has rotated out and admission resumes.
        now += 300_000;
        assert!(ac.admit("a", now, &h).is_ok(), "signal self-clears");
        assert!(!ac.slo_signal(&h).unwrap().engaged);
    }

    /// The overload e2e shape in miniature: a backlog that *builds
    /// gradually* while admits keep arriving must start shedding once
    /// windowed pops cross the SLO — not only after a step-function
    /// flood like the test above.
    #[test]
    fn slo_catches_a_slowly_building_backlog() {
        let ac = AdmissionControl::new(AdmissionOptions {
            slo_ms: Some(1_150),
            window_slot_ms: 230,
            window_slots: 4,
            min_window_samples: 1,
            ..Default::default()
        });
        let h = Histogram::new();
        let mut shed = 0u64;
        let mut first_shed_at = None;
        let mut next_pop = 0u64;
        // 18 s: admits every 140 ms; pops every 160 ms with queue wait
        // growing linearly to ~2.6 s (crosses the 1.15 s SLO at ~8 s).
        for now in (0..18_000_000u64).step_by(140_000) {
            while next_pop <= now {
                h.record(next_pop / 7);
                next_pop += 160_000;
            }
            if ac.admit("a", now, &h).is_err() {
                shed += 1;
                first_shed_at.get_or_insert(now);
            }
        }
        assert!(
            shed > 0,
            "a backlog past the SLO must shed (windowed p95 at end: {:?})",
            ac.slo_signal(&h)
        );
        let at = first_shed_at.unwrap();
        assert!(
            (7_000_000..12_000_000).contains(&at),
            "shedding should engage shortly after the SLO crossing, got {at}us"
        );
    }

    #[test]
    fn slo_needs_minimum_samples() {
        let ac = AdmissionControl::new(slo_opts(50));
        let h = Histogram::new();
        for _ in 0..3 {
            h.record(400_000); // 3 < min_window_samples = 4
        }
        assert!(ac.admit("a", 100_000, &h).is_ok());
    }

    #[test]
    fn disabled_options_admit_everything() {
        let ac = AdmissionControl::new(AdmissionOptions::default());
        assert!(!ac.options().enabled());
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(10_000_000);
        }
        for i in 0..1000u64 {
            assert!(ac.admit("a", i, &h).is_ok());
        }
    }
}
