//! Worker-side cluster membership: register/heartbeat with a
//! coordinator (`esteem-coord`) and deregister on graceful shutdown.
//!
//! The agent is deliberately thin — membership is coordinator-driven.
//! A worker only announces "I exist, here is my job API address" on a
//! fixed heartbeat; the coordinator owns liveness (a worker that stops
//! heartbeating *and* stops answering `/v1/status` is declared dead and
//! its jobs re-dispatched — safe because the simulator is
//! deterministic). Registration is idempotent on the coordinator, so
//! the heartbeat *is* a registration: a coordinator restart re-learns
//! the fleet within one heartbeat interval with no worker-side state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use esteem_stats::{Scope, StatsSource};
use serde::Value;

use crate::client::{self, RetryPolicy};

/// Read timeout for agent→coordinator calls. Short: these are tiny
/// control-plane requests, and a wedged coordinator must not pin the
/// agent thread past a couple of heartbeats.
const CONTROL_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Worker-side cluster membership configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Stable node name; the coordinator keys membership, sharding, and
    /// journal merging on it.
    pub node_id: String,
    /// Address other nodes should dial for this worker's job API.
    /// Defaults to the daemon's bound address, which only works when
    /// the bind address is routable (fine for localhost clusters).
    pub advertise: Option<String>,
    /// Heartbeat interval.
    pub heartbeat: Duration,
    /// Retry policy for registration attempts *within* one heartbeat.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    pub fn new(coordinator: impl Into<String>, node_id: impl Into<String>) -> Self {
        Self {
            coordinator: coordinator.into(),
            node_id: node_id.into(),
            advertise: None,
            heartbeat: Duration::from_secs(1),
            retry: RetryPolicy::new(2, 100),
        }
    }
}

/// The membership agent: one background thread heartbeating
/// `POST /v1/cluster/register` at the coordinator.
pub struct ClusterAgent {
    cfg: ClusterConfig,
    advertise: String,
    /// Heartbeats that reached the coordinator.
    pub heartbeats: AtomicU64,
    /// Heartbeats that failed (coordinator down or rejecting).
    pub heartbeat_failures: AtomicU64,
    /// Whether the most recent heartbeat succeeded.
    registered: AtomicBool,
    stop: Mutex<bool>,
    stop_cv: Condvar,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ClusterAgent {
    /// Starts heartbeating. `bound_addr` is the daemon's actual bound
    /// address (used when no advertise address was configured).
    pub fn spawn(cfg: ClusterConfig, bound_addr: std::net::SocketAddr) -> Arc<Self> {
        let advertise = cfg
            .advertise
            .clone()
            .unwrap_or_else(|| bound_addr.to_string());
        let agent = Arc::new(Self {
            cfg,
            advertise,
            heartbeats: AtomicU64::new(0),
            heartbeat_failures: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
            thread: Mutex::new(None),
        });
        let worker = Arc::clone(&agent);
        let handle = std::thread::Builder::new()
            .name("esteem-cluster-agent".into())
            .spawn(move || worker.heartbeat_loop())
            .expect("spawn cluster agent");
        *agent.thread.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        agent
    }

    pub fn node_id(&self) -> &str {
        &self.cfg.node_id
    }

    pub fn coordinator(&self) -> &str {
        &self.cfg.coordinator
    }

    pub fn advertised(&self) -> &str {
        &self.advertise
    }

    pub fn is_registered(&self) -> bool {
        self.registered.load(Ordering::Relaxed)
    }

    fn heartbeat_loop(&self) {
        let body = serde_json::to_string(&Value::Map(vec![
            ("id".into(), Value::Str(self.cfg.node_id.clone())),
            ("addr".into(), Value::Str(self.advertise.clone())),
        ]))
        .expect("serializes");
        loop {
            match client::request_with(
                &self.cfg.coordinator,
                "POST",
                "/v1/cluster/register",
                Some(&body),
                &self.cfg.retry,
                CONTROL_READ_TIMEOUT,
            ) {
                Ok((200, _)) => {
                    self.heartbeats.fetch_add(1, Ordering::Relaxed);
                    self.registered.store(true, Ordering::Relaxed);
                }
                Ok((status, resp)) => {
                    self.heartbeat_failures.fetch_add(1, Ordering::Relaxed);
                    self.registered.store(false, Ordering::Relaxed);
                    eprintln!("esteem-serve: cluster register rejected ({status}): {resp}");
                }
                Err(_) => {
                    // Coordinator down: keep trying, it re-learns the
                    // fleet from heartbeats when it comes back.
                    self.heartbeat_failures.fetch_add(1, Ordering::Relaxed);
                    self.registered.store(false, Ordering::Relaxed);
                }
            }
            let stopped = self.stop.lock().unwrap_or_else(|e| e.into_inner());
            let (stopped, _) = self
                .stop_cv
                .wait_timeout_while(stopped, self.cfg.heartbeat, |s| !*s)
                .unwrap_or_else(|e| e.into_inner());
            if *stopped {
                return;
            }
        }
    }

    /// Stops the heartbeat thread and sends a best-effort graceful
    /// deregister so the coordinator drains rather than declares death.
    pub fn stop_and_deregister(&self) {
        {
            let mut stopped = self.stop.lock().unwrap_or_else(|e| e.into_inner());
            if *stopped {
                return;
            }
            *stopped = true;
        }
        self.stop_cv.notify_all();
        if let Some(h) = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
        let body = serde_json::to_string(&Value::Map(vec![(
            "id".into(),
            Value::Str(self.cfg.node_id.clone()),
        )]))
        .expect("serializes");
        let _ = client::request_with(
            &self.cfg.coordinator,
            "POST",
            "/v1/cluster/deregister",
            Some(&body),
            &RetryPolicy::none(),
            CONTROL_READ_TIMEOUT,
        );
        self.registered.store(false, Ordering::Relaxed);
    }

    /// The `cluster` section of this worker's `/v1/status`.
    pub fn status_value(&self) -> Value {
        Value::Map(vec![
            ("role".into(), Value::Str("worker".into())),
            (
                "coordinator".into(),
                Value::Str(self.cfg.coordinator.clone()),
            ),
            ("node_id".into(), Value::Str(self.cfg.node_id.clone())),
            ("advertise".into(), Value::Str(self.advertise.clone())),
            ("registered".into(), Value::Bool(self.is_registered())),
            (
                "heartbeats".into(),
                Value::U64(self.heartbeats.load(Ordering::Relaxed)),
            ),
            (
                "heartbeat_failures".into(),
                Value::U64(self.heartbeat_failures.load(Ordering::Relaxed)),
            ),
        ])
    }
}

impl StatsSource for ClusterAgent {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("heartbeats", self.heartbeats.load(Ordering::Relaxed));
        out.counter(
            "heartbeat_failures",
            self.heartbeat_failures.load(Ordering::Relaxed),
        );
        out.gauge("registered", if self.is_registered() { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HandlerResult, HttpServer};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn agent_heartbeats_and_deregisters() {
        let registers = Arc::new(AtomicU64::new(0));
        let deregisters = Arc::new(AtomicU64::new(0));
        let (r, d) = (Arc::clone(&registers), Arc::clone(&deregisters));
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(move |req: &crate::http::Request| {
                match req.path.as_str() {
                    "/v1/cluster/register" => r.fetch_add(1, Ordering::Relaxed),
                    "/v1/cluster/deregister" => d.fetch_add(1, Ordering::Relaxed),
                    _ => 0,
                };
                HandlerResult::Json(200, "{}".into())
            }),
        )
        .unwrap();
        let coord_addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve(Duration::from_secs(5)));

        let mut cfg = ClusterConfig::new(coord_addr.to_string(), "w-test");
        cfg.heartbeat = Duration::from_millis(20);
        let bound: std::net::SocketAddr = "127.0.0.1:7117".parse().unwrap();
        let agent = ClusterAgent::spawn(cfg, bound);
        // At least two heartbeats land.
        for _ in 0..200 {
            if agent.heartbeats.load(Ordering::Relaxed) >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(agent.heartbeats.load(Ordering::Relaxed) >= 2);
        assert!(agent.is_registered());
        assert_eq!(agent.advertised(), "127.0.0.1:7117");
        agent.stop_and_deregister();
        assert_eq!(deregisters.load(Ordering::Relaxed), 1);
        assert!(!agent.is_registered());
        // Idempotent.
        agent.stop_and_deregister();
        assert_eq!(deregisters.load(Ordering::Relaxed), 1);
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn agent_survives_a_dead_coordinator() {
        // Bind-then-drop: the port refuses connections.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut cfg = ClusterConfig::new(dead, "w-orphan");
        cfg.heartbeat = Duration::from_millis(10);
        cfg.retry = RetryPolicy::none();
        let bound: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        let agent = ClusterAgent::spawn(cfg, bound);
        for _ in 0..200 {
            if agent.heartbeat_failures.load(Ordering::Relaxed) >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(agent.heartbeat_failures.load(Ordering::Relaxed) >= 2);
        assert!(!agent.is_registered());
        agent.stop_and_deregister();
    }
}
