//! `esteem-serve`: a resident job server that turns the one-shot
//! simulator into a long-running sweep service.
//!
//! The experiment harness runs thousands of short deterministic
//! simulations; spawning a fresh process per run pays process startup,
//! cold caches, and cold file-system state every time. This crate keeps
//! one warm daemon up instead:
//!
//! * [`http`] — a minimal hand-rolled HTTP/1.1 server (std only; the
//!   workspace is offline and vendors every dependency).
//! * [`job`] — job specs (wire format mirrors the `esteem-sim` CLI
//!   flags), per-job state, and blocking progress-event streams.
//! * [`queue`] — bounded priority queue with per-client fairness and
//!   optional priority aging.
//! * [`admission`] — front-door admission control: per-client token
//!   buckets and SLO shedding on windowed queue-wait p95, with
//!   `Retry-After` hints on every shed.
//! * [`journal`] — crash-safe append-only JSONL journal + recovery.
//! * [`server`] — the daemon: scheduler thread, resident
//!   [`esteem_par::WorkerPool`], run-cache-backed dedupe (identical
//!   in-flight configs coalesce onto one execution), panic isolation,
//!   and the JSON API.
//! * [`observe`] — stage-latency histograms (submit, queue wait, cache
//!   lookup, run, serialize, end-to-end by outcome and client) and the
//!   bounded flight recorder behind `/v1/flight-recorder` and the
//!   panic crash dump.
//! * [`client`] — a minimal blocking HTTP client used by
//!   `esteem-client`, `esteem-top`, and the end-to-end tests; its
//!   [`RetryPolicy`] honors server `Retry-After` hints on 429.
//! * [`loadgen`] — the `esteem-loadgen` harness: open-loop (Poisson)
//!   and closed-loop (fixed concurrency) arrivals, cheap/expensive job
//!   mixes, a cache-hit-ratio knob, and saturation sweeps that produce
//!   `BENCH_serve.json`.
//!
//! API summary (see DESIGN.md §13 for the full contract):
//!
//! | Route                     | Meaning                                |
//! |---------------------------|----------------------------------------|
//! | `POST /v1/jobs`           | submit a [`job::JobSpec`] (JSON)       |
//! | `GET /v1/jobs/{id}`       | status + result when done              |
//! | `GET /v1/jobs/{id}/events`| chunked JSONL interval-sample stream   |
//! | `GET /metrics`            | text exposition: counters, gauges, and |
//! |                           | stage-latency histogram buckets        |
//! | `GET /v1/status`          | JSON snapshot for `esteem-top`: queue, |
//! |                           | workers, stage percentiles, hit rate   |
//! | `GET /v1/flight-recorder` | recent per-job stage timings + trace   |
//! | `GET /v1/health`          | liveness probe                         |
//! | `POST /v1/shutdown`       | graceful drain and exit                |

pub mod admission;
pub mod client;
pub mod cluster;
pub mod http;
pub mod job;
pub mod journal;
pub mod loadgen;
pub mod observe;
pub mod queue;
pub mod server;

pub use admission::{AdmissionControl, AdmissionOptions, Shed, ShedReason};
pub use client::RetryPolicy;
pub use cluster::{ClusterAgent, ClusterConfig};
pub use job::{Job, JobSpec, JobState};
pub use journal::{Journal, Recovery};
pub use observe::{FlightRecorder, JobTiming, Outcome, ServeMetrics};
pub use queue::{JobQueue, PushError, QueuedJob};
pub use server::{spawn, Daemon, ServerOptions};
