//! Bounded job queue with priorities, per-client fairness, and
//! (optional) priority aging.
//!
//! Selection order when the scheduler pops:
//! 1. highest *effective* `priority` first (effective = base priority
//!    plus one level per [`aging`](JobQueue::with_aging) interval of
//!    pops the entry has waited through; with aging disabled, effective
//!    = base);
//! 2. among equal priorities, the client served *least recently* goes
//!    first (round-robin across clients, so one client flooding the
//!    queue cannot starve another);
//! 3. among entries of the same client and priority, FIFO.
//!
//! Entries are stored as per-(priority, client) FIFO rings indexed by a
//! priority-ordered map, so a pop inspects one ring *front* per live
//! (priority, client) pair instead of linear-scanning every queued
//! entry — draining an n-deep queue is O(n · pairs), not O(n²). The
//! per-client "last served" stamps are bounded at
//! [`MAX_SERVED_CLIENTS`]: once exceeded, the stalest stamps belonging
//! to clients with nothing queued are evicted (an evicted client that
//! returns is simply "never served" again, which only biases fairness
//! *toward* it). Clients with queued work are never evicted, so
//! ordering among live clients is unaffected.
//!
//! The queue is bounded; [`JobQueue::push`] never blocks — a full queue
//! is an explicit [`PushError::Full`] that the HTTP layer turns into a
//! 429 shed. Journal recovery uses [`JobQueue::push_recovered`], which
//! ignores the cap: jobs already accepted (and journaled) before a crash
//! must not be dropped by a restart.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Cap on remembered per-client "last served" stamps; see module docs.
/// Mirrors `MAX_CLIENT_LABELS` in `observe.rs`, scaled up because a
/// stamp is 8 bytes, not a histogram.
pub const MAX_SERVED_CLIENTS: usize = 1024;

/// One queued entry (the job body lives in the server's job table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    pub job_id: u64,
    pub priority: u8,
    pub client: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — shed the request.
    Full,
    /// Queue closed (daemon draining).
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

#[derive(Debug)]
struct Entry {
    job: QueuedJob,
    /// Monotone arrival stamp (FIFO tie-break).
    seq: u64,
    /// `pops` at enqueue time; aging is measured in pops waited since.
    enqueue_pops: u64,
}

#[derive(Debug)]
struct Inner {
    /// base priority -> client -> FIFO ring. Empty rings (and empty
    /// priority levels) are removed eagerly, so iteration cost tracks
    /// the *live* (priority, client) pairs, not history.
    rings: BTreeMap<u8, HashMap<String, VecDeque<Entry>>>,
    /// Total queued entries across all rings.
    len: usize,
    seq: u64,
    /// Monotone pop stamp; `served[client]` is the stamp of that
    /// client's most recent pop (0 = never served).
    pops: u64,
    served: HashMap<String, u64>,
    /// Queued-entry count per client (all priorities); guards `served`
    /// eviction — a client with work in flight keeps its stamp.
    queued: HashMap<String, usize>,
    closed: bool,
}

/// See the module docs for ordering semantics.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
    /// Pops an entry must wait through per +1 effective priority;
    /// 0 disables aging.
    aging_step: u64,
}

/// Base priority raised one level per `step` pops waited (0 = off).
fn effective_priority(base: u8, enqueue_pops: u64, pops: u64, step: u64) -> u8 {
    if step == 0 {
        return base;
    }
    let aged = ((pops - enqueue_pops) / step).min(u64::from(u8::MAX)) as u8;
    base.saturating_add(aged)
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                rings: BTreeMap::new(),
                len: 0,
                seq: 0,
                pops: 0,
                served: HashMap::new(),
                queued: HashMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            aging_step: 0,
        }
    }

    /// Enables priority aging: an entry gains one effective priority
    /// level per `step` pops it waits through (0 keeps aging off).
    pub fn with_aging(mut self, step: u64) -> Self {
        self.aging_step = step;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enqueue(inner: &mut Inner, job: QueuedJob) {
        let seq = inner.seq;
        inner.seq += 1;
        let enqueue_pops = inner.pops;
        *inner.queued.entry(job.client.clone()).or_insert(0) += 1;
        inner
            .rings
            .entry(job.priority)
            .or_default()
            .entry(job.client.clone())
            .or_default()
            .push_back(Entry {
                job,
                seq,
                enqueue_pops,
            });
        inner.len += 1;
    }

    /// Non-blocking enqueue; a full queue sheds instead of waiting.
    pub fn push(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(PushError::Full);
        }
        Self::enqueue(&mut inner, job);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueue bypassing the capacity cap (journal recovery only).
    pub fn push_recovered(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        Self::enqueue(&mut inner, job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an entry is available or the queue is closed and
    /// empty (then `None` — the scheduler's exit signal).
    pub fn pop_blocking(&self) -> Option<QueuedJob> {
        let mut inner = self.lock();
        loop {
            if let Some((base, client)) = Self::select(self.aging_step, &inner) {
                let job = Self::take(&mut inner, base, &client);
                inner.pops += 1;
                let stamp = inner.pops;
                inner.served.insert(client, stamp);
                Self::evict_served(&mut inner);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The (base priority, client) ring whose front entry serves next,
    /// per the module-doc ordering. Only ring fronts compete: within a
    /// ring the front has the smallest seq *and* (being oldest) the
    /// highest effective priority, so it dominates its ring.
    fn select(aging_step: u64, inner: &Inner) -> Option<(u8, String)> {
        let mut best: Option<((u16, u64, u64), u8, &str)> = None;
        for (&base, clients) in inner.rings.iter().rev() {
            for (client, ring) in clients {
                let front = ring.front().expect("empty rings are removed eagerly");
                let eff = effective_priority(base, front.enqueue_pops, inner.pops, aging_step);
                let last_served = inner.served.get(client).copied().unwrap_or(0);
                // Smallest key wins: invert priority (higher effective
                // priority -> smaller key), then least-recently-served
                // client, then arrival order.
                let key = (u16::from(u8::MAX - eff), last_served, front.seq);
                if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                    best = Some((key, base, client));
                }
            }
            // Without aging, effective = base, so nothing at a lower
            // base level can beat the level just scanned.
            if aging_step == 0 && best.is_some() {
                break;
            }
        }
        best.map(|(_, base, client)| (base, client.to_string()))
    }

    fn take(inner: &mut Inner, base: u8, client: &str) -> QueuedJob {
        let clients = inner.rings.get_mut(&base).expect("selected level exists");
        let ring = clients.get_mut(client).expect("selected ring exists");
        let entry = ring.pop_front().expect("selected ring is non-empty");
        if ring.is_empty() {
            clients.remove(client);
            if clients.is_empty() {
                inner.rings.remove(&base);
            }
        }
        inner.len -= 1;
        match inner.queued.get_mut(client) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                inner.queued.remove(client);
            }
        }
        entry.job
    }

    /// Caps `served` at [`MAX_SERVED_CLIENTS`] by dropping the stalest
    /// stamps of clients with nothing queued (live clients are exempt).
    /// Evicts down to half the cap, so the O(cap) scan runs once per
    /// cap/2 pops instead of on every pop past the threshold.
    fn evict_served(inner: &mut Inner) {
        if inner.served.len() <= MAX_SERVED_CLIENTS {
            return;
        }
        let mut idle: Vec<(u64, String)> = inner
            .served
            .iter()
            .filter(|(client, _)| !inner.queued.contains_key(*client))
            .map(|(client, &stamp)| (stamp, client.clone()))
            .collect();
        idle.sort_unstable();
        let excess = inner.served.len() - MAX_SERVED_CLIENTS / 2;
        for (_, client) in idle.into_iter().take(excess) {
            inner.served.remove(&client);
        }
    }

    /// Closes the queue: pushes fail, pops drain what remains then
    /// return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of per-client "last served" stamps held (introspection;
    /// bounded by [`MAX_SERVED_CLIENTS`] plus live clients).
    pub fn served_clients(&self) -> usize {
        self.lock().served.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: u8, client: &str) -> QueuedJob {
        QueuedJob {
            job_id: id,
            priority,
            client: client.into(),
        }
    }

    fn drain_ids(q: &JobQueue) -> Vec<u64> {
        q.close();
        std::iter::from_fn(|| q.pop_blocking())
            .map(|j| j.job_id)
            .collect()
    }

    #[test]
    fn fifo_within_one_client() {
        let q = JobQueue::new(8);
        for id in 0..4 {
            q.push(job(id, 1, "a")).unwrap();
        }
        assert_eq!(drain_ids(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn higher_priority_wins() {
        let q = JobQueue::new(8);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 9, "a")).unwrap();
        q.push(job(2, 5, "a")).unwrap();
        assert_eq!(drain_ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn equal_priority_round_robins_across_clients() {
        let q = JobQueue::new(16);
        // Client a floods first; client b's lone jobs must interleave.
        for id in 0..3 {
            q.push(job(id, 1, "a")).unwrap();
        }
        q.push(job(10, 1, "b")).unwrap();
        q.push(job(11, 1, "b")).unwrap();
        // Never-served clients tie at stamp 0, then FIFO: a's 0 goes
        // first, which stamps a, so b runs next, and so on.
        assert_eq!(drain_ids(&q), vec![0, 10, 1, 11, 2]);
    }

    #[test]
    fn priority_trumps_fairness() {
        let q = JobQueue::new(8);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 1, "b")).unwrap();
        q.push(job(2, 9, "a")).unwrap();
        // a's high-priority job jumps the line even though fairness
        // would prefer b; afterwards a is stamped as served, so b's
        // equal-priority job goes before a's remaining one.
        assert_eq!(drain_ids(&q), vec![2, 1, 0]);
    }

    #[test]
    fn full_queue_sheds_and_recovery_bypasses_cap() {
        let q = JobQueue::new(2);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 1, "a")).unwrap();
        assert_eq!(q.push(job(2, 1, "a")), Err(PushError::Full));
        q.push_recovered(job(3, 1, "a")).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn closed_queue_refuses_pushes_and_drains() {
        let q = JobQueue::new(4);
        q.push(job(0, 1, "a")).unwrap();
        q.close();
        assert_eq!(q.push(job(1, 1, "a")), Err(PushError::Closed));
        assert_eq!(q.pop_blocking().map(|j| j.job_id), Some(0));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(job(42, 1, "a")).unwrap();
        assert_eq!(t.join().unwrap().map(|j| j.job_id), Some(42));
    }

    /// Regression (leak): 10k distinct client names must not pin 10k
    /// served stamps forever.
    #[test]
    fn served_map_stays_bounded_across_10k_clients() {
        let q = JobQueue::new(16);
        for i in 0..10_000u64 {
            q.push(job(i, 1, &format!("client-{i}"))).unwrap();
            assert_eq!(q.pop_blocking().map(|j| j.job_id), Some(i));
        }
        assert!(
            q.served_clients() <= MAX_SERVED_CLIENTS,
            "served map leaked: {} stamps",
            q.served_clients()
        );
    }

    /// Regression (aging): under a *sustained* high-priority flood —
    /// fresh p2 arrivals between every pop — a waiting p1 job ages up
    /// to p2 and wins the fairness tie. Same-age entries age together,
    /// so only fresh arrivals can be overtaken: a one-shot burst still
    /// drains in strict priority order.
    #[test]
    fn aging_promotes_starved_low_priority_job() {
        // One p2 push before every pop: the flood never lets up.
        let sustained = |q: &JobQueue, rounds: u64| -> Vec<u64> {
            q.push(job(100, 1, "slow")).unwrap();
            let mut order = Vec::new();
            for id in 0..rounds {
                q.push(job(id, 2, "flood")).unwrap();
                order.push(q.pop_blocking().unwrap().job_id);
            }
            order
        };
        // Without aging the p1 job is starved for all 10 rounds.
        let q = JobQueue::new(16);
        assert_eq!(sustained(&q, 10), (0..10).collect::<Vec<u64>>());
        // With aging every 2 pops: after 2 pops the p1 job reaches
        // effective p2 and beats the fresh arrival (never served).
        let q = JobQueue::new(16).with_aging(2);
        assert_eq!(sustained(&q, 4), vec![0, 1, 100, 2]);
        // The flood itself still drains FIFO afterwards.
        assert_eq!(drain_ids(&q), vec![3]);
    }

    /// The legacy selection: linear scan of a flat entry vector,
    /// exactly as shipped before the ring rewrite. The differential
    /// test below pins the rewrite to these semantics byte-for-byte.
    struct Legacy {
        entries: Vec<(QueuedJob, u64)>,
        seq: u64,
        pops: u64,
        served: HashMap<String, u64>,
    }

    impl Legacy {
        fn new() -> Self {
            Self {
                entries: Vec::new(),
                seq: 0,
                pops: 0,
                served: HashMap::new(),
            }
        }

        fn push(&mut self, job: QueuedJob) {
            let seq = self.seq;
            self.seq += 1;
            self.entries.push((job, seq));
        }

        fn pop(&mut self) -> Option<u64> {
            let served = &self.served;
            let idx = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (job, seq))| {
                    let last_served = served.get(&job.client).copied().unwrap_or(0);
                    (u8::MAX - job.priority, last_served, *seq)
                })
                .map(|(idx, _)| idx)?;
            let (job, _) = self.entries.swap_remove(idx);
            self.pops += 1;
            let stamp = self.pops;
            self.served.insert(job.client, stamp);
            Some(job.job_id)
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Regression (O(n²) rewrite): randomized push/pop sequences pop in
    /// exactly the order the legacy linear-scan selection produced.
    #[test]
    fn differential_ring_selection_matches_legacy() {
        for seed in 1..=8u64 {
            let mut rng = seed;
            let q = JobQueue::new(1 << 16);
            let mut legacy = Legacy::new();
            let mut next_id = 0u64;
            let mut queued = 0usize;
            for _ in 0..400 {
                let r = splitmix64(&mut rng);
                if queued == 0 || r % 100 < 60 {
                    let priority = ((r >> 8) % 4) as u8;
                    let client = format!("c{}", (r >> 16) % 5);
                    q.push(job(next_id, priority, &client)).unwrap();
                    legacy.push(job(next_id, priority, &client));
                    next_id += 1;
                    queued += 1;
                } else {
                    let got = q.pop_blocking().map(|j| j.job_id);
                    assert_eq!(got, legacy.pop(), "divergence (seed {seed})");
                    queued -= 1;
                }
            }
            let rest: Vec<u64> = drain_ids(&q);
            let legacy_rest: Vec<u64> = std::iter::from_fn(|| legacy.pop()).collect();
            assert_eq!(rest, legacy_rest, "drain divergence (seed {seed})");
        }
    }
}
