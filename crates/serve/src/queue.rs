//! Bounded job queue with priorities and per-client fairness.
//!
//! Selection order when the scheduler pops:
//! 1. highest `priority` first;
//! 2. among equal priorities, the client served *least recently* goes
//!    first (round-robin across clients, so one client flooding the
//!    queue cannot starve another);
//! 3. among entries of the same client and priority, FIFO.
//!
//! The queue is bounded; [`JobQueue::push`] never blocks — a full queue
//! is an explicit [`PushError::Full`] that the HTTP layer turns into a
//! 429 shed. Journal recovery uses [`JobQueue::push_recovered`], which
//! ignores the cap: jobs already accepted (and journaled) before a crash
//! must not be dropped by a restart.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// One queued entry (the job body lives in the server's job table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    pub job_id: u64,
    pub priority: u8,
    pub client: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — shed the request.
    Full,
    /// Queue closed (daemon draining).
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    entries: Vec<Entry>,
    /// Monotone arrival stamp (FIFO tie-break).
    seq: u64,
    /// Monotone pop stamp; `served[client]` is the stamp of that
    /// client's most recent pop (0 = never served).
    pops: u64,
    served: HashMap<String, u64>,
    closed: bool,
}

#[derive(Debug)]
struct Entry {
    job: QueuedJob,
    seq: u64,
}

/// See the module docs for ordering semantics.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                seq: 0,
                pops: 0,
                served: HashMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking enqueue; a full queue sheds instead of waiting.
    pub fn push(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.entries.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(Entry { job, seq });
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueue bypassing the capacity cap (journal recovery only).
    pub fn push_recovered(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.entries.push(Entry { job, seq });
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an entry is available or the queue is closed and
    /// empty (then `None` — the scheduler's exit signal).
    pub fn pop_blocking(&self) -> Option<QueuedJob> {
        let mut inner = self.lock();
        loop {
            if let Some(idx) = Self::select(&inner) {
                let entry = inner.entries.swap_remove(idx);
                inner.pops += 1;
                let stamp = inner.pops;
                inner.served.insert(entry.job.client.clone(), stamp);
                return Some(entry.job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Index of the entry to serve next, per the module-doc ordering.
    fn select(inner: &Inner) -> Option<usize> {
        inner
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| {
                let last_served = inner.served.get(&e.job.client).copied().unwrap_or(0);
                // min_by_key, so invert priority (higher priority ->
                // smaller key); then least-recently-served client; then
                // arrival order.
                (u8::MAX - e.job.priority, last_served, e.seq)
            })
            .map(|(idx, _)| idx)
    }

    /// Closes the queue: pushes fail, pops drain what remains then
    /// return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: u8, client: &str) -> QueuedJob {
        QueuedJob {
            job_id: id,
            priority,
            client: client.into(),
        }
    }

    fn drain_ids(q: &JobQueue) -> Vec<u64> {
        q.close();
        std::iter::from_fn(|| q.pop_blocking())
            .map(|j| j.job_id)
            .collect()
    }

    #[test]
    fn fifo_within_one_client() {
        let q = JobQueue::new(8);
        for id in 0..4 {
            q.push(job(id, 1, "a")).unwrap();
        }
        assert_eq!(drain_ids(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn higher_priority_wins() {
        let q = JobQueue::new(8);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 9, "a")).unwrap();
        q.push(job(2, 5, "a")).unwrap();
        assert_eq!(drain_ids(&q), vec![1, 2, 0]);
    }

    #[test]
    fn equal_priority_round_robins_across_clients() {
        let q = JobQueue::new(16);
        // Client a floods first; client b's lone jobs must interleave.
        for id in 0..3 {
            q.push(job(id, 1, "a")).unwrap();
        }
        q.push(job(10, 1, "b")).unwrap();
        q.push(job(11, 1, "b")).unwrap();
        // Never-served clients tie at stamp 0, then FIFO: a's 0 goes
        // first, which stamps a, so b runs next, and so on.
        assert_eq!(drain_ids(&q), vec![0, 10, 1, 11, 2]);
    }

    #[test]
    fn priority_trumps_fairness() {
        let q = JobQueue::new(8);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 1, "b")).unwrap();
        q.push(job(2, 9, "a")).unwrap();
        // a's high-priority job jumps the line even though fairness
        // would prefer b; afterwards a is stamped as served, so b's
        // equal-priority job goes before a's remaining one.
        assert_eq!(drain_ids(&q), vec![2, 1, 0]);
    }

    #[test]
    fn full_queue_sheds_and_recovery_bypasses_cap() {
        let q = JobQueue::new(2);
        q.push(job(0, 1, "a")).unwrap();
        q.push(job(1, 1, "a")).unwrap();
        assert_eq!(q.push(job(2, 1, "a")), Err(PushError::Full));
        q.push_recovered(job(3, 1, "a")).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn closed_queue_refuses_pushes_and_drains() {
        let q = JobQueue::new(4);
        q.push(job(0, 1, "a")).unwrap();
        q.close();
        assert_eq!(q.push(job(1, 1, "a")), Err(PushError::Closed));
        assert_eq!(q.pop_blocking().map(|j| j.job_id), Some(0));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(job(42, 1, "a")).unwrap();
        assert_eq!(t.join().unwrap().map(|j| j.job_id), Some(42));
    }
}
