//! Minimal blocking HTTP/1.1 client for the daemon's API (std only).
//!
//! One request per connection (`Connection: close`), `Content-Length`
//! and chunked response bodies, and a streaming mode that hands chunked
//! lines to a callback as they arrive — enough for `esteem-client` and
//! the end-to-end tests, and nothing more.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::{map_get, Deserialize, Value};

use crate::job::JobSpec;

/// Response head: status + lowercased headers.
struct Head {
    status: u16,
    headers: Vec<(String, String)>,
}

fn read_head(reader: &mut impl BufRead) -> Result<Head, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader
            .read_line(&mut h)
            .map_err(|e| format!("reading headers: {e}"))?
            == 0
        {
            return Err("connection closed mid-headers".into());
        }
        let t = h.trim_end_matches(['\r', '\n']);
        if t.is_empty() {
            break;
        }
        if let Some((k, v)) = t.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    Ok(Head { status, headers })
}

fn header<'a>(head: &'a Head, name: &str) -> Option<&'a str> {
    head.headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    Ok(stream)
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(), String> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: esteem\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("sending request: {e}"))
}

/// One request/response round trip; decodes `Content-Length` and
/// chunked bodies. Returns `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let body =
        if header(&head, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            let mut out = String::new();
            read_chunked(&mut reader, |chunk| out.push_str(chunk))?;
            out
        } else if let Some(len) = header(&head, "content-length") {
            let len: usize = len.parse().map_err(|_| "bad content-length".to_owned())?;
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading body: {e}"))?;
            String::from_utf8_lossy(&buf).into_owned()
        } else {
            let mut out = String::new();
            let _ = reader.read_to_string(&mut out);
            out
        };
    Ok((head.status, body))
}

/// Decodes a chunked body, invoking `sink` once per chunk payload.
fn read_chunked(reader: &mut impl BufRead, mut sink: impl FnMut(&str)) -> Result<(), String> {
    loop {
        let mut size_line = String::new();
        if reader
            .read_line(&mut size_line)
            .map_err(|e| format!("reading chunk size: {e}"))?
            == 0
        {
            return Err("connection closed mid-chunk".into());
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            // Trailing CRLF after the last chunk.
            let mut crlf = String::new();
            let _ = reader.read_line(&mut crlf);
            return Ok(());
        }
        let mut buf = vec![0u8; size + 2]; // payload + CRLF
        reader
            .read_exact(&mut buf)
            .map_err(|e| format!("reading chunk: {e}"))?;
        sink(&String::from_utf8_lossy(&buf[..size]));
    }
}

/// Streams a chunked endpoint (`/v1/jobs/{id}/events`), calling
/// `on_line` per newline-terminated line as chunks arrive. Returns the
/// HTTP status.
pub fn stream_lines(addr: &str, path: &str, mut on_line: impl FnMut(&str)) -> Result<u16, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, "GET", path, None)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    if !header(&head, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        // Error responses are plain bodies; drain and report via status.
        let mut out = String::new();
        let _ = reader.read_to_string(&mut out);
        return Ok(head.status);
    }
    let mut pending = String::new();
    read_chunked(&mut reader, |chunk| {
        pending.push_str(chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end_matches('\n');
            if !line.is_empty() {
                on_line(line);
            }
        }
    })?;
    if !pending.trim().is_empty() {
        on_line(pending.trim_end_matches('\n'));
    }
    Ok(head.status)
}

/// Parsed `POST /v1/jobs` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitResponse {
    pub job: u64,
    pub coalesced: bool,
    pub cached: bool,
}

/// Submits a job spec; returns the assigned (or coalesced-onto) job id.
pub fn submit(addr: &str, spec: &JobSpec) -> Result<SubmitResponse, String> {
    let body = serde_json::to_string(spec).map_err(|e| format!("encoding spec: {e}"))?;
    let (status, resp) = request(addr, "POST", "/v1/jobs", Some(&body))?;
    if status != 202 {
        return Err(format!("submit failed ({status}): {resp}"));
    }
    let v: Value = serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
    let m = v.as_map().ok_or("response is not an object")?;
    let job = u64::from_value(map_get(m, "job").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let flag = |k: &str| matches!(map_get(m, k), Ok(Value::Bool(true)));
    Ok(SubmitResponse {
        job,
        coalesced: flag("coalesced"),
        cached: flag("cached"),
    })
}

/// `GET /v1/jobs/{id}` parsed into `(state, full response value)`.
pub fn poll(addr: &str, job: u64) -> Result<(String, Value), String> {
    let (status, resp) = request(addr, "GET", &format!("/v1/jobs/{job}"), None)?;
    if status != 200 {
        return Err(format!("poll failed ({status}): {resp}"));
    }
    let v: Value = serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
    let state = v
        .as_map()
        .and_then(|m| map_get(m, "state").ok())
        .and_then(|s| s.as_str())
        .ok_or("response missing state")?
        .to_owned();
    Ok((state, v))
}

/// Polls until the job is terminal. `Ok(result_value)` on done (the
/// report as a JSON value), `Err` with the job's error on failure.
pub fn fetch(addr: &str, job: u64, poll_interval: Duration) -> Result<Value, String> {
    loop {
        let (state, v) = poll(addr, job)?;
        match state.as_str() {
            "done" => {
                let m = v.as_map().ok_or("response is not an object")?;
                return map_get(m, "result").cloned().map_err(|e| e.to_string());
            }
            "failed" => {
                let err = v
                    .as_map()
                    .and_then(|m| map_get(m, "error").ok())
                    .and_then(|e| e.as_str())
                    .unwrap_or("unknown error")
                    .to_owned();
                return Err(format!("job {job} failed: {err}"));
            }
            _ => std::thread::sleep(poll_interval),
        }
    }
}

/// `POST /v1/shutdown`.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (status, body) = request(addr, "POST", "/v1/shutdown", None)?;
    if status == 200 {
        Ok(())
    } else {
        Err(format!("shutdown failed ({status}): {body}"))
    }
}

/// `GET /metrics` (plain text).
pub fn metrics(addr: &str) -> Result<String, String> {
    let (status, body) = request(addr, "GET", "/metrics", None)?;
    if status == 200 {
        Ok(body)
    } else {
        Err(format!("metrics failed ({status}): {body}"))
    }
}
