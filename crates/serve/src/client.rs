//! Minimal blocking HTTP/1.1 client for the daemon's API (std only).
//!
//! One request per connection (`Connection: close`), `Content-Length`
//! and chunked response bodies, a streaming mode that hands chunked
//! lines to a callback as they arrive, and an optional [`RetryPolicy`]
//! with jittered exponential backoff for transport-level failures —
//! enough for `esteem-client`, the coordinator→worker path, and the
//! end-to-end tests, and nothing more.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::{map_get, Deserialize, Value};

use crate::job::JobSpec;

/// Default read timeout: long, because `fetch` blocks on the daemon
/// while a simulation runs.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(300);

/// A fully decoded response: status, lowercased headers, body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// Jittered exponential backoff schedule for transport-level retries
/// (connect refused, timeouts, connections dropped mid-response).
///
/// Retrying a submit is safe end to end: job submission is idempotent on
/// the daemon side (identical in-flight specs coalesce, completed specs
/// hit the run cache), and polls are read-only.
///
/// The delay before retry `attempt` (0-based) is drawn with *equal
/// jitter* from the exponential envelope: the raw delay doubles per
/// attempt starting at `backoff_ms` and capped at `max_backoff_ms`;
/// the actual sleep is `capped/2 + rand(0..=capped/2)`. Jitter is
/// derived deterministically from `jitter_seed` so schedules are
/// reproducible in tests while distinct clients (distinct seeds)
/// decorrelate in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Number of *re*-tries after the initial attempt (0 = no retries).
    pub retries: u32,
    /// Base delay for the exponential envelope, in milliseconds.
    pub backoff_ms: u64,
    /// Cap on the raw (pre-jitter) delay, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: fail on the first transport error.
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_seed: 0,
        }
    }

    /// `retries` attempts after the first, doubling from `backoff_ms`
    /// and capped at `16 * backoff_ms`.
    pub fn new(retries: u32, backoff_ms: u64) -> Self {
        RetryPolicy {
            retries,
            backoff_ms,
            max_backoff_ms: backoff_ms.saturating_mul(16),
            jitter_seed: 0x5EED,
        }
    }

    /// Same policy with a different jitter seed (decorrelates clients).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Delay in milliseconds before retry `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let raw = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(16) as u64);
        let capped = raw.min(self.max_backoff_ms);
        let half = capped / 2;
        half + splitmix64(self.jitter_seed ^ u64::from(attempt)) % (half + 1)
    }

    /// The full backoff schedule, one delay per retry. Mostly for tests
    /// and `--help` style introspection.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.retries).map(|a| self.delay_ms(a)).collect()
    }
}

/// SplitMix64 — tiny deterministic hash for jitter (no rand dep).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Response head: status + lowercased headers.
struct Head {
    status: u16,
    headers: Vec<(String, String)>,
}

fn read_head(reader: &mut impl BufRead) -> Result<Head, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if reader
            .read_line(&mut h)
            .map_err(|e| format!("reading headers: {e}"))?
            == 0
        {
            return Err("connection closed mid-headers".into());
        }
        let t = h.trim_end_matches(['\r', '\n']);
        if t.is_empty() {
            break;
        }
        if let Some((k, v)) = t.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    Ok(Head { status, headers })
}

fn header<'a>(head: &'a Head, name: &str) -> Option<&'a str> {
    head.headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    connect_with(addr, DEFAULT_READ_TIMEOUT)
}

fn connect_with(addr: &str, read_timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    Ok(stream)
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(), String> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: esteem\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("sending request: {e}"))
}

/// One request/response round trip; decodes `Content-Length` and
/// chunked bodies. Returns `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    request_once(addr, method, path, body, DEFAULT_READ_TIMEOUT)
        .map(|(status, _, body)| (status, body))
}

/// [`request`] that also returns the (lowercased) response headers —
/// the shed path's `Retry-After`/`retry-after-ms` hints live there.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    read_timeout: Duration,
) -> Result<FullResponse, String> {
    request_once(addr, method, path, body, read_timeout)
}

/// The server's retry hint from response headers, in milliseconds:
/// `retry-after-ms` (precise) wins over integer-seconds `Retry-After`.
pub fn retry_after_ms(headers: &[(String, String)]) -> Option<u64> {
    let get = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if let Some(ms) = get("retry-after-ms").and_then(|v| v.parse::<u64>().ok()) {
        return Some(ms);
    }
    get("retry-after")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|secs| secs.saturating_mul(1000))
}

/// Recovers the retry hint a failed [`submit_with`] embedded in its
/// error string (the coordinator's shed-backoff path).
pub fn retry_after_ms_from_error(err: &str) -> Option<u64> {
    let rest = err.split("(retry after ").nth(1)?;
    rest.split("ms)").next()?.trim().parse().ok()
}

/// [`request`] with a retry policy: transport errors (connect refused,
/// timeout, connection dropped mid-response) are retried per `policy`;
/// HTTP error statuses are returned to the caller, not retried.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    read_timeout: Duration,
) -> Result<(u16, String), String> {
    let mut attempt = 0u32;
    loop {
        match request_once(addr, method, path, body, read_timeout) {
            Ok((status, _, body)) => return Ok((status, body)),
            Err(e) if attempt < policy.retries => {
                std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
                let _ = e;
            }
            Err(e) => {
                return Err(if attempt > 0 {
                    format!("{e} (after {} retries)", attempt)
                } else {
                    e
                })
            }
        }
    }
}

fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    read_timeout: Duration,
) -> Result<FullResponse, String> {
    let mut stream = connect_with(addr, read_timeout)?;
    send_request(&mut stream, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let body =
        if header(&head, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            let mut out = String::new();
            read_chunked(&mut reader, |chunk| out.push_str(chunk))?;
            out
        } else if let Some(len) = header(&head, "content-length") {
            let len: usize = len.parse().map_err(|_| "bad content-length".to_owned())?;
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading body: {e}"))?;
            String::from_utf8_lossy(&buf).into_owned()
        } else {
            let mut out = String::new();
            let _ = reader.read_to_string(&mut out);
            out
        };
    Ok((head.status, head.headers, body))
}

/// Decodes a chunked body, invoking `sink` once per chunk payload.
fn read_chunked(reader: &mut impl BufRead, mut sink: impl FnMut(&str)) -> Result<(), String> {
    loop {
        let mut size_line = String::new();
        if reader
            .read_line(&mut size_line)
            .map_err(|e| format!("reading chunk size: {e}"))?
            == 0
        {
            return Err("connection closed mid-chunk".into());
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            // Trailing CRLF after the last chunk.
            let mut crlf = String::new();
            let _ = reader.read_line(&mut crlf);
            return Ok(());
        }
        let mut buf = vec![0u8; size + 2]; // payload + CRLF
        reader
            .read_exact(&mut buf)
            .map_err(|e| format!("reading chunk: {e}"))?;
        sink(&String::from_utf8_lossy(&buf[..size]));
    }
}

/// Streams a chunked endpoint (`/v1/jobs/{id}/events`), calling
/// `on_line` per newline-terminated line as chunks arrive. Returns the
/// HTTP status.
pub fn stream_lines(addr: &str, path: &str, mut on_line: impl FnMut(&str)) -> Result<u16, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, "GET", path, None)?;
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    if !header(&head, "transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        // Error responses are plain bodies; drain and report via status.
        let mut out = String::new();
        let _ = reader.read_to_string(&mut out);
        return Ok(head.status);
    }
    let mut pending = String::new();
    read_chunked(&mut reader, |chunk| {
        pending.push_str(chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end_matches('\n');
            if !line.is_empty() {
                on_line(line);
            }
        }
    })?;
    if !pending.trim().is_empty() {
        on_line(pending.trim_end_matches('\n'));
    }
    Ok(head.status)
}

/// Parsed `POST /v1/jobs` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitResponse {
    pub job: u64,
    pub coalesced: bool,
    pub cached: bool,
}

/// Submits a job spec; returns the assigned (or coalesced-onto) job id.
pub fn submit(addr: &str, spec: &JobSpec) -> Result<SubmitResponse, String> {
    submit_with(addr, spec, &RetryPolicy::none(), DEFAULT_READ_TIMEOUT)
}

/// Ceiling on honored `Retry-After` hints (a buggy or hostile server
/// must not park a client for minutes).
const MAX_HONORED_RETRY_AFTER_MS: u64 = 60_000;

/// [`submit`] with retries: safe because identical re-submissions
/// coalesce onto the in-flight job or hit the run cache.
///
/// Transport errors back off per `policy` as before. A 429 shed is
/// *also* retried within the policy budget, sleeping the server's
/// `Retry-After`/`retry-after-ms` hint when present (the daemon derives
/// it from queue-wait percentiles) instead of the blind exponential —
/// so a closed-loop client paces itself to the saturated daemon rather
/// than hammering it. If retries run out, the hint is embedded in the
/// error (`... (retry after Nms)`) for callers that manage their own
/// requeue, e.g. the cluster coordinator.
pub fn submit_with(
    addr: &str,
    spec: &JobSpec,
    policy: &RetryPolicy,
    read_timeout: Duration,
) -> Result<SubmitResponse, String> {
    let body = serde_json::to_string(spec).map_err(|e| format!("encoding spec: {e}"))?;
    let mut attempt = 0u32;
    loop {
        match request_once(addr, "POST", "/v1/jobs", Some(&body), read_timeout) {
            Ok((202, _, resp)) => {
                let v: Value =
                    serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
                let m = v.as_map().ok_or("response is not an object")?;
                let job = u64::from_value(map_get(m, "job").map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
                let flag = |k: &str| matches!(map_get(m, k), Ok(Value::Bool(true)));
                return Ok(SubmitResponse {
                    job,
                    coalesced: flag("coalesced"),
                    cached: flag("cached"),
                });
            }
            Ok((429, headers, resp)) => {
                let hint = retry_after_ms(&headers);
                if attempt < policy.retries {
                    let delay = hint
                        .map(|ms| ms.clamp(1, MAX_HONORED_RETRY_AFTER_MS))
                        .unwrap_or_else(|| policy.delay_ms(attempt));
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                    continue;
                }
                let suffix = hint
                    .map(|ms| format!(" (retry after {ms}ms)"))
                    .unwrap_or_default();
                return Err(format!("submit failed (429): {resp}{suffix}"));
            }
            Ok((status, _, resp)) => return Err(format!("submit failed ({status}): {resp}")),
            Err(e) if attempt < policy.retries => {
                std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
                let _ = e;
            }
            Err(e) => {
                return Err(if attempt > 0 {
                    format!("{e} (after {attempt} retries)")
                } else {
                    e
                })
            }
        }
    }
}

/// `GET /v1/jobs/{id}` parsed into `(state, full response value)`.
pub fn poll(addr: &str, job: u64) -> Result<(String, Value), String> {
    poll_with(addr, job, &RetryPolicy::none(), DEFAULT_READ_TIMEOUT)
}

/// [`poll`] with retries (polls are read-only, always safe to retry).
pub fn poll_with(
    addr: &str,
    job: u64,
    policy: &RetryPolicy,
    read_timeout: Duration,
) -> Result<(String, Value), String> {
    let (status, resp) = request_with(
        addr,
        "GET",
        &format!("/v1/jobs/{job}"),
        None,
        policy,
        read_timeout,
    )?;
    if status != 200 {
        return Err(format!("poll failed ({status}): {resp}"));
    }
    let v: Value = serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
    let state = v
        .as_map()
        .and_then(|m| map_get(m, "state").ok())
        .and_then(|s| s.as_str())
        .ok_or("response missing state")?
        .to_owned();
    Ok((state, v))
}

/// Polls until the job is terminal. `Ok(result_value)` on done (the
/// report as a JSON value), `Err` with the job's error on failure.
pub fn fetch(addr: &str, job: u64, poll_interval: Duration) -> Result<Value, String> {
    fetch_with(
        addr,
        job,
        poll_interval,
        &RetryPolicy::none(),
        DEFAULT_READ_TIMEOUT,
    )
}

/// [`fetch`] with per-poll retries.
pub fn fetch_with(
    addr: &str,
    job: u64,
    poll_interval: Duration,
    policy: &RetryPolicy,
    read_timeout: Duration,
) -> Result<Value, String> {
    loop {
        let (state, v) = poll_with(addr, job, policy, read_timeout)?;
        match state.as_str() {
            "done" => {
                let m = v.as_map().ok_or("response is not an object")?;
                return map_get(m, "result").cloned().map_err(|e| e.to_string());
            }
            "failed" => {
                let err = v
                    .as_map()
                    .and_then(|m| map_get(m, "error").ok())
                    .and_then(|e| e.as_str())
                    .unwrap_or("unknown error")
                    .to_owned();
                return Err(format!("job {job} failed: {err}"));
            }
            _ => std::thread::sleep(poll_interval),
        }
    }
}

/// `POST /v1/shutdown`.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (status, body) = request(addr, "POST", "/v1/shutdown", None)?;
    if status == 200 {
        Ok(())
    } else {
        Err(format!("shutdown failed ({status}): {body}"))
    }
}

/// `GET /metrics` (plain text).
pub fn metrics(addr: &str) -> Result<String, String> {
    let (status, body) = request(addr, "GET", "/metrics", None)?;
    if status == 200 {
        Ok(body)
    } else {
        Err(format!("metrics failed ({status}): {body}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_exponential_capped_and_jittered() {
        let p = RetryPolicy::new(6, 100);
        let schedule = p.schedule();
        assert_eq!(schedule.len(), 6);
        // Raw envelope: 100, 200, 400, 800, 1600, capped at 1600.
        let raw = [100u64, 200, 400, 800, 1600, 1600];
        for (attempt, (&delay, &cap)) in schedule.iter().zip(raw.iter()).enumerate() {
            assert!(
                delay >= cap / 2 && delay <= cap,
                "attempt {attempt}: delay {delay} outside [{}..{}]",
                cap / 2,
                cap
            );
        }
        // Deterministic for a fixed seed...
        assert_eq!(schedule, p.schedule());
        // ...and decorrelated across seeds.
        assert_ne!(schedule, p.with_seed(42).schedule());
    }

    #[test]
    fn no_retry_policy_has_empty_schedule() {
        assert!(RetryPolicy::none().schedule().is_empty());
        assert_eq!(RetryPolicy::new(0, 250).schedule(), Vec::<u64>::new());
    }

    #[test]
    fn request_with_retries_past_a_dropped_connection() {
        use std::io::Write as _;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: accept and drop without answering.
            drop(listener.accept().unwrap());
            // Second connection: serve a real response.
            let (mut s, _) = listener.accept().unwrap();
            let mut drain = [0u8; 1024];
            let _ = std::io::Read::read(&mut s, &mut drain);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
                .unwrap();
        });
        let policy = RetryPolicy::new(2, 1);
        let (status, body) = request_with(
            &addr,
            "GET",
            "/v1/health",
            None,
            &policy,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));
        server.join().unwrap();
    }

    #[test]
    fn retry_after_ms_prefers_precise_header() {
        let headers = vec![
            ("retry-after".to_string(), "2".to_string()),
            ("retry-after-ms".to_string(), "1500".to_string()),
        ];
        assert_eq!(retry_after_ms(&headers), Some(1500));
        // Seconds-only header falls back to ms conversion.
        let secs_only = vec![("retry-after".to_string(), "3".to_string())];
        assert_eq!(retry_after_ms(&secs_only), Some(3000));
        assert_eq!(retry_after_ms(&[]), None);
    }

    #[test]
    fn retry_after_marker_round_trips_through_error_strings() {
        let err = "submit failed (429): {\"error\":\"queue full\"} (retry after 250ms)";
        assert_eq!(retry_after_ms_from_error(err), Some(250));
        assert_eq!(retry_after_ms_from_error("submit failed (429): shed"), None);
        assert_eq!(retry_after_ms_from_error("ok"), None);
    }

    #[test]
    fn submit_honors_retry_after_on_429_then_succeeds() {
        use std::io::Write as _;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First request: shed with a tiny Retry-After hint.
            let (mut s, _) = listener.accept().unwrap();
            let mut drain = [0u8; 4096];
            let _ = std::io::Read::read(&mut s, &mut drain);
            let body = "{\"error\":\"queue full\"}";
            s.write_all(
                format!(
                    "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                     Retry-After: 1\r\nretry-after-ms: 5\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
            // Retried request: accept the job.
            let (mut s, _) = listener.accept().unwrap();
            let _ = std::io::Read::read(&mut s, &mut drain);
            let body = "{\"job\":7,\"coalesced\":false,\"cached\":false}";
            s.write_all(
                format!(
                    "HTTP/1.1 202 Accepted\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        });
        let start = std::time::Instant::now();
        let resp = submit_with(
            &addr,
            &JobSpec::default(),
            &RetryPolicy::new(2, 60_000), // blind backoff would sleep 60s
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.job, 7);
        // Honoring the 5ms hint keeps the retry far under the blind
        // 60s backoff envelope.
        assert!(start.elapsed() < Duration::from_secs(5));
        server.join().unwrap();
    }

    #[test]
    fn exhausted_429_retries_embed_the_hint_in_the_error() {
        use std::io::Write as _;
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut drain = [0u8; 4096];
            let _ = std::io::Read::read(&mut s, &mut drain);
            let body = "{\"error\":\"queue full\"}";
            s.write_all(
                format!(
                    "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                     retry-after-ms: 750\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        });
        let err = submit_with(
            &addr,
            &JobSpec::default(),
            &RetryPolicy::none(),
            Duration::from_secs(5),
        )
        .unwrap_err();
        assert!(err.contains("submit failed (429)"), "got: {err}");
        assert_eq!(retry_after_ms_from_error(&err), Some(750));
        server.join().unwrap();
    }

    #[test]
    fn request_without_retries_fails_fast_on_dead_port() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = request(&addr, "GET", "/v1/health", None).unwrap_err();
        assert!(err.contains("connecting to"), "got: {err}");
    }
}
