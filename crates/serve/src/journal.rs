//! Crash-safe append-only job journal.
//!
//! One JSON object per line, written (and fsync'd via `BufWriter` flush
//! per record) at every job state transition:
//!
//! ```text
//! {"event":"submit","job":3,"fingerprint":"00ab..","t":1754500000,"spec":{..}}
//! {"event":"coalesce","into":3,"t":..}
//! {"event":"start","job":3,"t":..}
//! {"event":"done","job":3,"t":..}
//! {"event":"fail","job":3,"error":"..","t":..}
//! ```
//!
//! Recovery replays the log on daemon start:
//! * `done` jobs come back as done; the report itself is *not* in the
//!   journal (it can be megabytes) — it is re-materialized from the run
//!   cache by fingerprint, and if the cache no longer holds it the job
//!   is simply re-queued (the simulator is deterministic, so re-running
//!   reproduces the identical report).
//! * `fail` jobs come back failed with their recorded error.
//! * submitted-but-unfinished jobs (crash mid-run) are re-queued.
//! * a torn final line (crash mid-write) is skipped, not fatal.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{map_get, Deserialize, Serialize, Value};

use crate::job::JobSpec;

/// Append-side handle. `Journal::none()` disables journaling (all
/// records are dropped), which keeps call sites branch-free.
pub struct Journal {
    file: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    path: Option<PathBuf>,
}

fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Journal {
    /// Opens (creating or appending) the journal at `path`.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            file: Some(Mutex::new(std::io::BufWriter::new(file))),
            path: Some(path.to_owned()),
        })
    }

    /// A disabled journal: every record is a no-op.
    pub fn none() -> Self {
        Self {
            file: None,
            path: None,
        }
    }

    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn record(&self, mut fields: Vec<(String, Value)>) {
        let Some(file) = &self.file else { return };
        fields.push(("t".into(), epoch_secs().to_value()));
        let line = serde_json::to_string(&Value::Map(fields)).expect("journal record serializes");
        let mut w = file.lock().unwrap_or_else(|e| e.into_inner());
        // Flush per record: the journal exists for crash recovery, so a
        // record buffered in userspace is a record lost.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    pub fn submit(&self, job: u64, fingerprint: u64, spec: &JobSpec) {
        self.record(vec![
            ("event".into(), Value::Str("submit".into())),
            ("job".into(), job.to_value()),
            (
                "fingerprint".into(),
                Value::Str(format!("{fingerprint:016x}")),
            ),
            ("spec".into(), spec.to_value()),
        ]);
    }

    /// Records that a duplicate submission coalesced onto job `into`.
    /// Coalesced submissions have no id of their own — they *are* the
    /// primary job — so only the target is recorded.
    pub fn coalesce(&self, into: u64) {
        self.record(vec![
            ("event".into(), Value::Str("coalesce".into())),
            ("into".into(), into.to_value()),
        ]);
    }

    pub fn start(&self, job: u64) {
        self.record(vec![
            ("event".into(), Value::Str("start".into())),
            ("job".into(), job.to_value()),
        ]);
    }

    pub fn done(&self, job: u64) {
        self.record(vec![
            ("event".into(), Value::Str("done".into())),
            ("job".into(), job.to_value()),
        ]);
    }

    pub fn fail(&self, job: u64, error: &str) {
        self.record(vec![
            ("event".into(), Value::Str("fail".into())),
            ("job".into(), job.to_value()),
            ("error".into(), Value::Str(error.into())),
        ]);
    }

    /// Marks a compacted journal head. Carries the highest job id ever
    /// allocated so id allocation stays monotonic even when the records
    /// of the highest jobs (e.g. coalesced ones) were compacted away.
    pub fn compact_marker(&self, max_id: u64) {
        self.record(vec![
            ("event".into(), Value::Str("compact".into())),
            ("max_id".into(), max_id.to_value()),
        ]);
    }
}

/// Outcome of one journaled job after replay.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredOutcome {
    /// Submitted (possibly started) but never finished: re-queue.
    Unfinished,
    /// Finished successfully; report must be re-materialized from the
    /// run cache (or by re-running).
    Done,
    Failed(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    pub id: u64,
    pub spec: JobSpec,
    pub fingerprint: u64,
    pub outcome: RecoveredOutcome,
}

#[derive(Debug, Default)]
pub struct Recovery {
    /// In submit order.
    pub jobs: Vec<RecoveredJob>,
    /// Highest job id seen (id allocation resumes above it).
    pub max_id: u64,
    /// Lines that failed to parse (only the torn tail is expected).
    pub skipped_lines: u64,
}

/// Replays a journal file. A missing file is an empty recovery (first
/// boot), not an error.
///
/// Corruption anywhere in the file — a torn tail, an overwritten middle
/// line, even bytes that are not UTF-8 — skips that line (counted in
/// [`Recovery::skipped_lines`]) and keeps replaying. Recovery must never
/// refuse to boot the daemon over a damaged record: the worst case for a
/// skipped line is a job replayed as unfinished, and re-running is safe
/// because the simulator is deterministic. (`BufRead::lines` would abort
/// the whole replay with an I/O error on the first non-UTF-8 byte.)
pub fn recover(path: &Path) -> std::io::Result<Recovery> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Recovery::default()),
        Err(e) => return Err(e),
    };
    let mut rec = Recovery::default();
    for raw in bytes.split(|&b| b == b'\n') {
        if raw.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            rec.skipped_lines += 1;
            continue;
        };
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            rec.skipped_lines += 1;
            continue;
        };
        if apply(&mut rec, &v).is_none() {
            rec.skipped_lines += 1;
        }
    }
    Ok(rec)
}

fn apply(rec: &mut Recovery, v: &Value) -> Option<()> {
    let m = v.as_map()?;
    let event = map_get(m, "event").ok()?.as_str()?;
    // Coalesced submissions never executed separately; nothing to
    // recover (the primary job carries the work).
    if event == "coalesce" {
        return Some(());
    }
    // Compaction marker: restores the id high-water mark recorded when
    // the journal head was rewritten.
    if event == "compact" {
        let max = u64::from_value(map_get(m, "max_id").ok()?).ok()?;
        rec.max_id = rec.max_id.max(max);
        return Some(());
    }
    let id = u64::from_value(map_get(m, "job").ok()?).ok()?;
    rec.max_id = rec.max_id.max(id);
    match event {
        "submit" => {
            let spec = JobSpec::from_value(map_get(m, "spec").ok()?).ok()?;
            let fp = map_get(m, "fingerprint").ok()?.as_str()?;
            let fingerprint = u64::from_str_radix(fp, 16).ok()?;
            rec.jobs.push(RecoveredJob {
                id,
                spec,
                fingerprint,
                outcome: RecoveredOutcome::Unfinished,
            });
        }
        "start" => {}
        "done" => {
            let job = rec.jobs.iter_mut().find(|j| j.id == id)?;
            job.outcome = RecoveredOutcome::Done;
        }
        "fail" => {
            let error = map_get(m, "error").ok()?.as_str()?.to_owned();
            let job = rec.jobs.iter_mut().find(|j| j.id == id)?;
            job.outcome = RecoveredOutcome::Failed(error);
        }
        _ => return None,
    }
    Some(())
}

/// What [`compact`] did, for operator-facing reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Jobs surviving compaction (all of them — compaction drops
    /// *records*, never jobs).
    pub jobs: usize,
    /// Jobs in a terminal state (done/failed): one submit + one outcome
    /// record each after compaction.
    pub terminal: usize,
    /// Jobs still unfinished: submit record only (they re-queue on
    /// replay, which is safe because the simulator is deterministic).
    pub unfinished: usize,
    /// Non-blank journal lines before / after the rewrite.
    pub lines_before: u64,
    pub lines_after: u64,
    /// Unparseable lines dropped by the rewrite.
    pub skipped: u64,
}

/// Rewrites the journal at `path`, keeping one `submit` record per job
/// plus the terminal `done`/`fail` record where one exists. Intermediate
/// `start` records, `coalesce` markers, corrupt lines, and all
/// superseded history are dropped, so long-lived daemons stop replaying
/// unbounded history on restart.
///
/// The rewrite goes to a temp file in the same directory and lands with
/// an atomic rename, so a crash mid-compaction leaves the original
/// journal untouched.
pub fn compact(path: &Path) -> std::io::Result<CompactStats> {
    let rec = recover(path)?;
    let lines_before = match std::fs::read(path) {
        Ok(bytes) => bytes
            .split(|&b| b == b'\n')
            .filter(|l| !l.iter().all(u8::is_ascii_whitespace))
            .count() as u64,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    let tmp = path.with_extension("compact-tmp");
    let _ = std::fs::remove_file(&tmp);
    let out = Journal::open(&tmp)?;
    out.compact_marker(rec.max_id);
    let mut terminal = 0usize;
    for job in &rec.jobs {
        out.submit(job.id, job.fingerprint, &job.spec);
        match &job.outcome {
            RecoveredOutcome::Done => {
                out.done(job.id);
                terminal += 1;
            }
            RecoveredOutcome::Failed(err) => {
                out.fail(job.id, err);
                terminal += 1;
            }
            RecoveredOutcome::Unfinished => {}
        }
    }
    drop(out);
    std::fs::rename(&tmp, path)?;
    Ok(CompactStats {
        jobs: rec.jobs.len(),
        terminal,
        unfinished: rec.jobs.len() - terminal,
        lines_before,
        lines_after: 1 + rec.jobs.len() as u64 + terminal as u64,
        skipped: rec.skipped_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("esteem-journal-{}-{name}", std::process::id()))
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            workload: "gamess".into(),
            seed,
            ..JobSpec::default()
        }
    }

    #[test]
    fn round_trips_all_outcomes() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.submit(1, 0xabc, &spec(1));
        j.start(1);
        j.done(1);
        j.submit(2, 0xdef, &spec(2));
        j.start(2);
        j.fail(2, "panicked: boom");
        j.submit(3, 0x123, &spec(3));
        j.coalesce(3);
        j.submit(5, 0x456, &spec(5));
        j.start(5);
        // Daemon "crashes" here: job 3 queued, job 5 running.
        drop(j);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.max_id, 5);
        assert_eq!(rec.skipped_lines, 0);
        assert_eq!(rec.jobs.len(), 4);
        assert_eq!(rec.jobs[0].outcome, RecoveredOutcome::Done);
        assert_eq!(rec.jobs[0].fingerprint, 0xabc);
        assert_eq!(
            rec.jobs[1].outcome,
            RecoveredOutcome::Failed("panicked: boom".into())
        );
        assert_eq!(rec.jobs[2].outcome, RecoveredOutcome::Unfinished);
        assert_eq!(rec.jobs[3].outcome, RecoveredOutcome::Unfinished);
        assert_eq!(rec.jobs[3].spec.seed, 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_skipped() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.submit(1, 0x1, &spec(1));
        drop(j);
        // Simulate a crash mid-write of the next record.
        {
            let mut f = std::fs::File::options().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"done\",\"jo").unwrap();
        }
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 1);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].outcome, RecoveredOutcome::Unfinished);
        let _ = std::fs::remove_file(&path);
    }

    /// A line clobbered *mid-file* (disk corruption, partial overwrite)
    /// must not abort replay or poison the records after it — including
    /// when the clobber is not valid UTF-8, which used to surface as an
    /// I/O error from `BufRead::lines` and fail the whole recovery.
    #[test]
    fn corrupt_middle_line_is_skipped_and_counted() {
        let path = tmp("midline.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.submit(1, 0x1, &spec(1));
        j.done(1);
        j.submit(2, 0x2, &spec(2));
        j.done(2);
        drop(j);
        // Clobber line 2 (`done 1`) in place with non-UTF-8 garbage of
        // the same length, preserving the newline.
        let bytes = std::fs::read(&path).unwrap();
        let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        let mut out = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if i == 1 {
                out.extend(vec![0xFF_u8; line.len()]);
            } else {
                out.extend_from_slice(line);
            }
            if i + 1 < lines.len() {
                out.push(b'\n');
            }
        }
        std::fs::write(&path, out).unwrap();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 1);
        assert_eq!(rec.jobs.len(), 2);
        // Job 1 lost its `done` record: replayed as unfinished (re-queue),
        // which is safe because the simulator is deterministic.
        assert_eq!(rec.jobs[0].outcome, RecoveredOutcome::Unfinished);
        // Job 2's records, after the corruption, still replay fully.
        assert_eq!(rec.jobs[1].outcome, RecoveredOutcome::Done);
        assert_eq!(rec.max_id, 2);
        let _ = std::fs::remove_file(&path);
    }

    /// An event for a job id with no surviving `submit` (e.g. the submit
    /// line was the corrupted one) is skipped, not a panic.
    #[test]
    fn orphan_event_counts_as_skipped() {
        let path = tmp("orphan.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.done(7);
        j.fail(8, "boom");
        drop(j);
        let rec = recover(&path).unwrap();
        assert!(rec.jobs.is_empty());
        assert_eq!(rec.skipped_lines, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_keeps_outcomes_and_id_high_water_mark() {
        let path = tmp("compact.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.submit(1, 0xa, &spec(1));
        j.start(1);
        j.done(1);
        j.submit(2, 0xb, &spec(2));
        j.coalesce(2);
        j.start(2);
        j.fail(2, "boom");
        j.submit(3, 0xc, &spec(3));
        j.start(3);
        // Job 9 exists only as an orphaned done record (its submit line
        // was lost) — compaction drops it but must keep max_id = 9.
        j.done(9);
        drop(j);
        let stats = compact(&path).unwrap();
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.terminal, 2);
        assert_eq!(stats.unfinished, 1);
        assert_eq!(stats.lines_before, 10);
        assert_eq!(stats.lines_after, 6); // marker + 3 submits + 2 outcomes
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 0);
        assert_eq!(rec.max_id, 9);
        assert_eq!(rec.jobs.len(), 3);
        assert_eq!(rec.jobs[0].outcome, RecoveredOutcome::Done);
        assert_eq!(rec.jobs[1].outcome, RecoveredOutcome::Failed("boom".into()));
        assert_eq!(rec.jobs[2].outcome, RecoveredOutcome::Unfinished);
        assert_eq!(rec.jobs[0].fingerprint, 0xa);
        // Compaction is idempotent.
        let stats2 = compact(&path).unwrap();
        assert_eq!(stats2.lines_after, stats.lines_after);
        assert_eq!(stats2.lines_before, stats.lines_after);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_corrupt_lines() {
        let path = tmp("compact-corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.submit(1, 0x1, &spec(1));
        j.done(1);
        drop(j);
        {
            let mut f = std::fs::File::options().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"done\",\"jo").unwrap();
        }
        let stats = compact(&path).unwrap();
        assert_eq!(stats.skipped, 1);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 0);
        assert_eq!(rec.jobs.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compacting_a_missing_journal_fails_cleanly() {
        // recover() treats missing as empty, but compaction of a path
        // that never existed still writes an empty compacted journal.
        let path = tmp("compact-missing.jsonl");
        let _ = std::fs::remove_file(&path);
        let stats = compact(&path).unwrap();
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.lines_after, 1);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty_recovery() {
        let rec = recover(Path::new("/nonexistent/esteem-journal.jsonl")).unwrap();
        assert!(rec.jobs.is_empty());
        assert_eq!(rec.max_id, 0);
    }

    #[test]
    fn disabled_journal_is_a_no_op() {
        let j = Journal::none();
        j.submit(1, 0x1, &spec(1));
        j.done(1);
        assert!(j.path().is_none());
    }

    #[test]
    fn reopen_appends_rather_than_truncates() {
        let path = tmp("append.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.submit(1, 0x1, &spec(1));
        }
        {
            let j = Journal::open(&path).unwrap();
            j.done(1);
        }
        let rec = recover(&path).unwrap();
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].outcome, RecoveredOutcome::Done);
        let _ = std::fs::remove_file(&path);
    }
}
