//! Daemon observability: stage-latency histograms and a flight recorder.
//!
//! [`ServeMetrics`] times every job through the daemon's pipeline —
//! submit handling, queue wait, cache lookup, simulation run, report
//! serialization, and submit-to-terminal end-to-end — into
//! [`Histogram`]s that `/metrics` renders as cumulative bucket lines
//! and `/v1/status` summarizes as percentiles. End-to-end time is also
//! broken out by outcome (`done`/`failed`/`cached`) and, with bounded
//! cardinality, by submitting client.
//!
//! [`FlightRecorder`] keeps the last N per-job stage timing records in
//! a fixed-size ring. Together with the tracer's non-destructive event
//! snapshot it backs `GET /v1/flight-recorder` and the crash dump the
//! daemon writes when a job panics (`--flight-dump`): enough recent
//! history to reconstruct "what was the daemon doing just before this
//! happened" without unbounded memory.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use esteem_stats::{labeled, Histogram, HistogramSnapshot, Scope, StatsSource};
use esteem_trace::TraceEvent;
use serde::{Serialize, Value};

/// How a job reached its terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Executed and completed.
    Done,
    /// Executed and panicked (bad configuration, simulator assert).
    Failed,
    /// Answered straight from the run cache at submit.
    Cached,
}

impl Outcome {
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Done => "done",
            Outcome::Failed => "failed",
            Outcome::Cached => "cached",
        }
    }
}

const OUTCOMES: [Outcome; 3] = [Outcome::Done, Outcome::Failed, Outcome::Cached];

/// Distinct `client` label values tracked individually; the rest pool
/// into `client="other"` so a sweep with unbounded client names cannot
/// grow the metric set without bound.
const MAX_CLIENT_LABELS: usize = 16;

/// Stage-latency instrumentation for the daemon. All recording methods
/// take `&self` (histograms are atomic); one instance lives in the
/// server state and is shared with the workers.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Construction time: uptime origin and the epoch for
    /// [`Self::now_us`] job timestamps.
    epoch: Instant,
    /// Wall time of the `POST /v1/jobs` handler (resolve + dedupe +
    /// enqueue), all submissions including rejected and shed.
    pub submit_us: Histogram,
    /// Queue push to scheduler pop.
    pub queue_wait_us: Histogram,
    /// Run-cache lookup inside the worker.
    pub cache_lookup_us: Histogram,
    /// Simulation run (cache misses only).
    pub run_us: Histogram,
    /// Report serialization + run-cache insert.
    pub serialize_us: Histogram,
    /// Submit to terminal state, by outcome (indexed like [`OUTCOMES`]).
    e2e_us: [Histogram; 3],
    /// Per-client end-to-end, bounded by [`MAX_CLIENT_LABELS`].
    clients: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            submit_us: Histogram::new(),
            queue_wait_us: Histogram::new(),
            cache_lookup_us: Histogram::new(),
            run_us: Histogram::new(),
            serialize_us: Histogram::new(),
            e2e_us: [Histogram::new(), Histogram::new(), Histogram::new()],
            clients: Mutex::new(HashMap::new()),
        }
    }

    /// Microseconds since the daemon started (job timestamp clock).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    pub fn uptime_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records a terminal transition: end-to-end latency by outcome and
    /// by (bounded) client.
    pub fn record_e2e(&self, outcome: Outcome, client: &str, us: u64) {
        self.e2e_us[outcome as usize].record(us);
        self.client_hist(client).record(us);
    }

    pub fn e2e_us(&self, outcome: Outcome) -> HistogramSnapshot {
        self.e2e_us[outcome as usize].snapshot()
    }

    /// The histogram for `client`, creating it while under the label
    /// budget and falling back to the shared `other` slot beyond it.
    fn client_hist(&self, client: &str) -> Arc<Histogram> {
        let mut map = self.clients.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = map.get(client) {
            return Arc::clone(h);
        }
        let key = if map.len() < MAX_CLIENT_LABELS || client == "other" {
            client.to_owned()
        } else {
            "other".to_owned()
        };
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Histogram::new())))
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSource for ServeMetrics {
    fn collect(&self, out: &mut Scope<'_>) {
        out.gauge("uptime_seconds", self.uptime_seconds());
        out.histogram("stage/submit_us", self.submit_us.snapshot());
        out.histogram("stage/queue_wait_us", self.queue_wait_us.snapshot());
        out.histogram("stage/cache_lookup_us", self.cache_lookup_us.snapshot());
        out.histogram("stage/run_us", self.run_us.snapshot());
        out.histogram("stage/serialize_us", self.serialize_us.snapshot());
        for o in OUTCOMES {
            out.histogram(
                &labeled("stage/e2e_us", &[("outcome", o.name())]),
                self.e2e_us(o),
            );
        }
        let mut clients: Vec<(String, HistogramSnapshot)> = self
            .clients
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        clients.sort_by(|a, b| a.0.cmp(&b.0));
        for (client, snap) in clients {
            out.histogram(&labeled("client_e2e_us", &[("client", &client)]), snap);
        }
    }
}

/// One job's trip through the pipeline, for the flight recorder.
#[derive(Debug, Clone)]
pub struct JobTiming {
    pub job: u64,
    pub client: String,
    pub workload: String,
    pub outcome: Outcome,
    pub fingerprint: u64,
    pub queue_wait_us: u64,
    pub cache_lookup_us: u64,
    pub run_us: u64,
    pub serialize_us: u64,
    pub e2e_us: u64,
}

impl Serialize for JobTiming {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("job".into(), self.job.to_value()),
            ("client".into(), Value::Str(self.client.clone())),
            ("workload".into(), Value::Str(self.workload.clone())),
            ("outcome".into(), Value::Str(self.outcome.name().into())),
            (
                "fingerprint".into(),
                Value::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("queue_wait_us".into(), self.queue_wait_us.to_value()),
            ("cache_lookup_us".into(), self.cache_lookup_us.to_value()),
            ("run_us".into(), self.run_us.to_value()),
            ("serialize_us".into(), self.serialize_us.to_value()),
            ("e2e_us".into(), self.e2e_us.to_value()),
        ])
    }
}

/// Bounded ring of recent [`JobTiming`] records.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<JobTiming>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn record(&self, timing: JobTiming) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(timing);
    }

    /// Recent records, oldest first.
    pub fn snapshot(&self) -> Vec<JobTiming> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The flight-recorder dump: recent job timings plus a non-destructive
/// snapshot of the tracer ring. Serves `GET /v1/flight-recorder` and the
/// panic crash dump.
pub fn flight_dump_value(jobs: &[JobTiming], trace: &[TraceEvent]) -> Value {
    Value::Map(vec![
        (
            "jobs".into(),
            Value::Seq(jobs.iter().map(|t| t.to_value()).collect()),
        ),
        (
            "trace".into(),
            Value::Seq(trace.iter().map(|e| e.to_value()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_labels_are_bounded_with_overflow_to_other() {
        let m = ServeMetrics::new();
        for i in 0..MAX_CLIENT_LABELS + 5 {
            m.record_e2e(Outcome::Done, &format!("client-{i:02}"), 100);
        }
        let map = m.clients.lock().unwrap();
        // The first MAX_CLIENT_LABELS names are tracked individually;
        // the five beyond the budget pooled into "other".
        assert_eq!(map.len(), MAX_CLIENT_LABELS + 1);
        assert_eq!(map.get("other").unwrap().snapshot().count(), 5);
        assert_eq!(map.get("client-00").unwrap().snapshot().count(), 1);
        drop(map);
        assert_eq!(
            m.e2e_us(Outcome::Done).count() as usize,
            MAX_CLIENT_LABELS + 5
        );
    }

    #[test]
    fn stats_source_emits_labeled_stage_histograms() {
        let m = ServeMetrics::new();
        m.submit_us.record(40);
        m.record_e2e(Outcome::Failed, "ci", 1234);
        let mut r = esteem_stats::StatsReading::new();
        r.register("serve", &m);
        assert_eq!(r.histogram("serve/stage/submit_us").unwrap().count(), 1);
        assert_eq!(
            r.histogram("serve/stage/e2e_us{outcome=\"failed\"}")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            r.histogram("serve/client_e2e_us{client=\"ci\"}")
                .unwrap()
                .count(),
            1
        );
        let text = r.render_text();
        assert!(
            text.contains("serve/stage/e2e_us_bucket{outcome=\"failed\",le="),
            "labeled buckets missing:\n{text}"
        );
    }

    #[test]
    fn flight_recorder_ring_is_bounded_and_ordered() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(JobTiming {
                job: i,
                client: "c".into(),
                workload: "gamess".into(),
                outcome: Outcome::Done,
                fingerprint: 7,
                queue_wait_us: 1,
                cache_lookup_us: 2,
                run_us: 3,
                serialize_us: 4,
                e2e_us: 10,
            });
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<u64> = snap.iter().map(|t| t.job).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest evicted, order preserved");
        let v = flight_dump_value(&snap, &[]);
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains("\"run_us\":3") && text.contains("\"trace\":[]"));
    }
}
