//! Job specifications and per-job state.
//!
//! A [`JobSpec`] is the JSON body of `POST /v1/jobs`. Its fields mirror
//! the `esteem-sim` CLI flags one-to-one so that a job submitted to the
//! daemon and a CLI invocation with the same options resolve to the
//! *same* [`SystemConfig`] — and therefore the same run-cache
//! fingerprint and the byte-identical report.
//!
//! The vendored serde stand-in has no `#[serde(default)]`, so
//! [`JobSpec`] implements `Deserialize` by hand: every field is
//! optional in the wire form and falls back to the CLI default, and
//! unknown fields are rejected with the offending name (a typo in a
//! sweep script should fail loudly at submit, not run the default).

use std::sync::{Arc, Condvar, Mutex};

use esteem_core::{AlgoParams, SimReport, SystemConfig, Technique};
use esteem_edram::RetentionSpec;
use esteem_workloads::{benchmark_by_name, mixes::mix_by_acronym, BenchmarkProfile};
use serde::{map_get, Deserialize, Serialize, Value};

/// One job request: workload + technique + simulation knobs, plus the
/// scheduling fields `priority` and `client`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub workload: String,
    pub technique: String,
    pub retention_us: f64,
    pub instructions: u64,
    pub alpha: f64,
    pub a_min: u8,
    pub modules: Option<u16>,
    pub interval: u64,
    pub rs: u32,
    pub ecc_periods: u8,
    pub ecc_bits: u8,
    pub ways: u8,
    pub seed: u64,
    /// Warm-up cycles excluded from metrics; `None` keeps the config
    /// default (35 M, the paper's fast-forward stand-in). Load tests
    /// submit small values so a job costs milliseconds, not seconds.
    /// Part of the fingerprint: runs with different warm-up lengths are
    /// different simulations.
    pub warmup: Option<u64>,
    /// Worker threads for the simulator's front-end refill. Pure
    /// throughput knob: reports are byte-identical at any value, so it
    /// is deliberately *excluded* from the run-cache fingerprint — jobs
    /// differing only in `threads` coalesce. 0 means serial (the
    /// default, matching `esteem-sim` without `--threads`).
    pub threads: usize,
    /// Higher runs first; ties are served fairly across clients.
    pub priority: u8,
    /// Fairness key: the queue round-robins across distinct clients.
    pub client: String,
}

impl Default for JobSpec {
    fn default() -> Self {
        // Keep in lockstep with `esteem-sim`'s `Args::default` — the
        // whole point of the daemon is that the same options mean the
        // same simulation.
        Self {
            workload: String::new(),
            technique: "esteem".into(),
            retention_us: 50.0,
            instructions: 10_000_000,
            alpha: 0.97,
            a_min: 3,
            modules: None,
            interval: 10_000_000,
            rs: 64,
            ecc_periods: 4,
            ecc_bits: 1,
            ways: 4,
            seed: 1,
            warmup: None,
            threads: 0,
            priority: 1,
            client: "anon".into(),
        }
    }
}

impl Serialize for JobSpec {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("workload".into(), Value::Str(self.workload.clone())),
            ("technique".into(), Value::Str(self.technique.clone())),
            ("retention_us".into(), Value::F64(self.retention_us)),
            ("instructions".into(), self.instructions.to_value()),
            ("alpha".into(), Value::F64(self.alpha)),
            ("a_min".into(), self.a_min.to_value()),
        ];
        if let Some(modules) = self.modules {
            m.push(("modules".into(), modules.to_value()));
        }
        m.extend([
            ("interval".into(), self.interval.to_value()),
            ("rs".into(), self.rs.to_value()),
            ("ecc_periods".into(), self.ecc_periods.to_value()),
            ("ecc_bits".into(), self.ecc_bits.to_value()),
            ("ways".into(), self.ways.to_value()),
            ("seed".into(), self.seed.to_value()),
        ]);
        if let Some(warmup) = self.warmup {
            m.push(("warmup".into(), warmup.to_value()));
        }
        m.extend([
            ("threads".into(), self.threads.to_value()),
            ("priority".into(), self.priority.to_value()),
            ("client".into(), Value::Str(self.client.clone())),
        ]);
        Value::Map(m)
    }
}

const KNOWN_FIELDS: &[&str] = &[
    "workload",
    "technique",
    "retention_us",
    "instructions",
    "alpha",
    "a_min",
    "modules",
    "interval",
    "rs",
    "ecc_periods",
    "ecc_bits",
    "ways",
    "seed",
    "warmup",
    "threads",
    "priority",
    "client",
];

/// Reads an optional field: absent (or JSON null) keeps the default.
fn opt<T: Deserialize>(m: &[(String, Value)], key: &str, slot: &mut T) -> Result<(), serde::Error> {
    match map_get(m, key) {
        Ok(Value::Null) | Err(_) => Ok(()),
        Ok(v) => {
            *slot = T::from_value(v).map_err(|e| serde::Error::custom(format!("{key}: {e}")))?;
            Ok(())
        }
    }
}

impl Deserialize for JobSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("job spec must be a JSON object"))?;
        if let Some((unknown, _)) = m.iter().find(|(k, _)| !KNOWN_FIELDS.contains(&k.as_str())) {
            return Err(serde::Error::custom(format!("unknown field `{unknown}`")));
        }
        let workload = map_get(m, "workload")
            .map_err(|_| serde::Error::custom("missing field `workload`"))?
            .as_str()
            .ok_or_else(|| serde::Error::custom("workload must be a string"))?
            .to_owned();
        let mut spec = JobSpec {
            workload,
            ..JobSpec::default()
        };
        opt(m, "technique", &mut spec.technique)?;
        opt(m, "retention_us", &mut spec.retention_us)?;
        opt(m, "instructions", &mut spec.instructions)?;
        opt(m, "alpha", &mut spec.alpha)?;
        opt(m, "a_min", &mut spec.a_min)?;
        if let Ok(v) = map_get(m, "modules") {
            if !matches!(v, Value::Null) {
                let modules = u16::from_value(v)
                    .map_err(|e| serde::Error::custom(format!("modules: {e}")))?;
                spec.modules = Some(modules);
            }
        }
        opt(m, "interval", &mut spec.interval)?;
        opt(m, "rs", &mut spec.rs)?;
        opt(m, "ecc_periods", &mut spec.ecc_periods)?;
        opt(m, "ecc_bits", &mut spec.ecc_bits)?;
        opt(m, "ways", &mut spec.ways)?;
        opt(m, "seed", &mut spec.seed)?;
        if let Ok(v) = map_get(m, "warmup") {
            if !matches!(v, Value::Null) {
                let warmup =
                    u64::from_value(v).map_err(|e| serde::Error::custom(format!("warmup: {e}")))?;
                spec.warmup = Some(warmup);
            }
        }
        opt(m, "threads", &mut spec.threads)?;
        opt(m, "priority", &mut spec.priority)?;
        opt(m, "client", &mut spec.client)?;
        Ok(spec)
    }
}

/// A spec resolved to concrete simulation inputs plus its run-cache
/// fingerprint (the coalescing key).
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    pub cfg: SystemConfig,
    pub profiles: Vec<BenchmarkProfile>,
    pub label: String,
    pub fingerprint: u64,
}

impl JobSpec {
    /// Resolves the spec into simulator inputs, mirroring `esteem-sim`'s
    /// flag handling exactly.
    ///
    /// This rejects what can be rejected cheaply at submit time (unknown
    /// workload, unknown technique, unparsable retention). It does *not*
    /// run the full [`SystemConfig`] validation: the daemon treats the
    /// simulator as untrusted and lets an invalid configuration panic
    /// inside the isolated worker, which fails that one job while the
    /// daemon keeps serving.
    pub fn resolve(&self) -> Result<ResolvedJob, String> {
        let (profiles, cores) = if let Some(b) = benchmark_by_name(&self.workload) {
            (vec![b], 1)
        } else if let Some(m) = mix_by_acronym(&self.workload) {
            (vec![m.a, m.b], 2)
        } else {
            return Err(format!("unknown workload '{}'", self.workload));
        };
        let algo = AlgoParams {
            alpha: self.alpha,
            a_min: self.a_min,
            modules: self.modules.unwrap_or(if cores == 1 { 8 } else { 16 }),
            interval_cycles: self.interval,
            rs: self.rs,
            max_step: None,
            non_lru_guard: true,
            shrink_confirm: true,
        };
        let technique = match self.technique.as_str() {
            "baseline" => Technique::Baseline,
            "rpv" => Technique::Rpv,
            "rpd" => Technique::Rpd,
            "periodic-valid" => Technique::PeriodicValid,
            "esteem" => Technique::Esteem(algo),
            "ecc" => Technique::EccRefresh {
                periods: self.ecc_periods,
                ecc_bits: self.ecc_bits,
            },
            "static" => Technique::StaticWays { ways: self.ways },
            other => return Err(format!("unknown technique '{other}'")),
        };
        let mut cfg = if cores == 1 {
            SystemConfig::paper_single_core(technique)
        } else {
            SystemConfig::paper_dual_core(technique)
        };
        cfg.retention = RetentionSpec::try_from_micros(self.retention_us, 2.0)
            .map_err(|e| format!("retention_us {}: {e}", self.retention_us))?;
        cfg.sim_instructions = self.instructions;
        cfg.seed = self.seed;
        if let Some(w) = self.warmup {
            cfg.warmup_cycles = w;
        }
        let label = self.workload.clone();
        let fingerprint = esteem_harness::runcache::fingerprint(&cfg, &profiles, &label);
        Ok(ResolvedJob {
            cfg,
            profiles,
            label,
            fingerprint,
        })
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    Queued,
    Running,
    Done(Box<SimReport>),
    Failed(String),
}

impl JobState {
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// Growing buffer of progress lines (JSONL interval samples) with
/// blocking subscription: a `/events` stream reads lines as they land
/// and ends when the job closes the buffer.
#[derive(Debug, Default)]
pub struct JobEvents {
    inner: Mutex<EventsInner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct EventsInner {
    lines: Vec<String>,
    closed: bool,
}

impl JobEvents {
    pub fn push(&self, line: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return;
        }
        inner.lines.push(line);
        self.cv.notify_all();
    }

    /// Closes the buffer: every blocked and future reader drains the
    /// remaining lines and then sees end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        self.cv.notify_all();
    }

    /// Blocks until line `cursor` exists (returning it) or the buffer is
    /// closed with no more lines (returning `None`).
    pub fn next_after(&self, cursor: usize) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if cursor < inner.lines.len() {
                return Some(inner.lines[cursor].clone());
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lines
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over a job's event lines (feeds a chunked HTTP
/// response; ends when the job reaches a terminal state).
pub struct EventStream {
    events: Arc<JobEvents>,
    cursor: usize,
}

impl EventStream {
    pub fn new(events: Arc<JobEvents>) -> Self {
        Self { events, cursor: 0 }
    }
}

impl Iterator for EventStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let line = self.events.next_after(self.cursor)?;
        self.cursor += 1;
        Some(line)
    }
}

/// One tracked job: immutable identity plus mutable state.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub spec: JobSpec,
    pub fingerprint: u64,
    pub state: Mutex<JobState>,
    pub events: Arc<JobEvents>,
    /// How many later submissions coalesced onto this execution.
    pub coalesced: std::sync::atomic::AtomicU64,
    /// Enqueue timestamp (`Tracer::elapsed_us` bits) for the queue-wait
    /// span; 0 until the job is queued.
    pub queued_at_us: std::sync::atomic::AtomicU64,
    /// Submit timestamp on the daemon's `ServeMetrics` clock
    /// (microseconds since daemon start), the origin for the
    /// end-to-end stage latency; 0 until the job is accepted.
    pub born_at_us: std::sync::atomic::AtomicU64,
}

impl Job {
    pub fn new(id: u64, spec: JobSpec, fingerprint: u64) -> Self {
        Self {
            id,
            spec,
            fingerprint,
            state: Mutex::new(JobState::Queued),
            events: Arc::new(JobEvents::default()),
            coalesced: std::sync::atomic::AtomicU64::new(0),
            queued_at_us: std::sync::atomic::AtomicU64::new(0),
            born_at_us: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn state(&self) -> JobState {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    pub fn set_state(&self, next: JobState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_match_cli_defaults() {
        let spec = JobSpec::default();
        assert_eq!(spec.technique, "esteem");
        assert_eq!(spec.retention_us, 50.0);
        assert_eq!(spec.instructions, 10_000_000);
        assert_eq!(spec.alpha, 0.97);
        assert_eq!(spec.a_min, 3);
        assert_eq!(spec.seed, 1);
    }

    #[test]
    fn minimal_json_gets_defaults() {
        let spec: JobSpec = serde_json::from_str("{\"workload\":\"gamess\"}").unwrap();
        assert_eq!(spec.workload, "gamess");
        assert_eq!(
            spec,
            JobSpec {
                workload: "gamess".into(),
                ..JobSpec::default()
            }
        );
    }

    #[test]
    fn unknown_field_is_rejected_by_name() {
        let err = serde_json::from_str::<JobSpec>("{\"workload\":\"gamess\",\"retention\":40}")
            .expect_err("typo must be rejected");
        assert!(err.to_string().contains("retention"), "got: {err}");
    }

    #[test]
    fn missing_workload_is_rejected() {
        let err = serde_json::from_str::<JobSpec>("{\"technique\":\"rpv\"}").unwrap_err();
        assert!(err.to_string().contains("workload"), "got: {err}");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            workload: "gamess_milc".into(),
            technique: "ecc".into(),
            retention_us: 40.0,
            modules: Some(4),
            warmup: Some(500_000),
            priority: 7,
            client: "sweeper".into(),
            ..JobSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn warmup_override_changes_the_fingerprint() {
        // Warm-up length changes the simulated region, so short-warm-up
        // load-test jobs must never hit the run cache of (or coalesce
        // with) a full-warm-up run of the same options.
        let full = JobSpec {
            workload: "gamess".into(),
            ..JobSpec::default()
        };
        let short = JobSpec {
            warmup: Some(200_000),
            ..full.clone()
        };
        let a = full.resolve().unwrap();
        let b = short.resolve().unwrap();
        assert_eq!(b.cfg.warmup_cycles, 200_000);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn resolve_rejects_unknown_workload_and_technique() {
        let mut spec = JobSpec {
            workload: "nope".into(),
            ..JobSpec::default()
        };
        assert!(spec.resolve().unwrap_err().contains("unknown workload"));
        spec.workload = "gamess".into();
        spec.technique = "warp".into();
        assert!(spec.resolve().unwrap_err().contains("unknown technique"));
    }

    #[test]
    fn identical_specs_share_a_fingerprint() {
        let spec = JobSpec {
            workload: "gamess".into(),
            instructions: 100_000,
            ..JobSpec::default()
        };
        let a = spec.resolve().unwrap();
        let b = spec.clone().resolve().unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        let other = JobSpec { seed: 2, ..spec };
        assert_ne!(a.fingerprint, other.resolve().unwrap().fingerprint);
    }

    #[test]
    fn events_stream_drains_then_ends() {
        let events = Arc::new(JobEvents::default());
        events.push("a".into());
        events.push("b".into());
        let feeder = Arc::clone(&events);
        let t = std::thread::spawn(move || {
            feeder.push("c".into());
            feeder.close();
        });
        let got: Vec<String> = EventStream::new(Arc::clone(&events)).collect();
        t.join().unwrap();
        assert_eq!(got, vec!["a", "b", "c"]);
        // Closed buffer refuses further lines.
        events.push("late".into());
        assert_eq!(events.len(), 3);
    }
}
