//! SLO-driven load harness for the daemon (`esteem-loadgen`).
//!
//! Drives a running `esteem-serve` with a synthetic but *deterministic*
//! job stream and reports client-observed submit-to-done latency
//! percentiles, throughput, and shed rate — the numbers the admission
//! layer's SLO claims are judged against.
//!
//! Two arrival models:
//!
//! * **Closed loop** — a fixed number of concurrent clients, each
//!   submitting its next job the moment the previous one finishes.
//!   Sweeping the concurrency maps the daemon's throughput/latency
//!   curve; the peak of that curve is the saturation RPS recorded in
//!   `BENCH_serve.json` (see [`saturation_sweep`]).
//! * **Open loop** — Poisson arrivals at a target rate, independent of
//!   completions. This is the model that exposes queueing collapse: an
//!   open-loop generator does not politely slow down when the server
//!   does.
//!
//! The whole schedule — per-job client label, cheap/expensive class,
//! simulator seed (with a cache-hit-ratio knob that deliberately
//! re-submits earlier specs), and open-loop arrival offsets — is a pure
//! function of `--seed`, so any run can be replayed exactly.
//! [`schedule_digest`] folds the first N planned jobs into one hex
//! token; `esteem-loadgen --smoke` prints it so CI can assert the
//! planner never drifts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use esteem_stats::Histogram;
use serde::{Deserialize, Serialize, Value};

use crate::client::{self, RetryPolicy};
use crate::job::JobSpec;

/// Arrival model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Poisson arrivals at `rps`, independent of completions.
    Open { rps: f64 },
    /// `concurrency` clients, each back-to-back.
    Closed { concurrency: usize },
}

impl Mode {
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
        }
    }
}

/// Load-run configuration (defaults form a small closed-loop smoke run).
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Daemon address (`host:port`).
    pub addr: String,
    pub mode: Mode,
    /// How long to keep submitting; in-flight jobs still drain after.
    pub duration: Duration,
    /// Master seed: the entire schedule derives from it.
    pub seed: u64,
    /// Distinct client labels (`lg0`, `lg1`, ...) cycled by the plan.
    pub clients: usize,
    /// Probability a job re-submits an earlier job's simulator seed,
    /// turning it into a run-cache hit (or an in-flight coalesce).
    pub hit_ratio: f64,
    /// Fraction of jobs drawn as expensive.
    pub expensive_frac: f64,
    /// Instruction budget for cheap jobs.
    pub cheap_instructions: u64,
    /// Instruction budget for expensive jobs.
    pub expensive_instructions: u64,
    /// Workload name submitted for every job.
    pub workload: String,
    /// Warm-up cycle override carried on every generated spec. The
    /// default is deliberately tiny (200 k cycles vs the simulator's
    /// 35 M paper stand-in): a load test exercises the *serving* path,
    /// and cheap jobs are what let it reach interesting arrival rates.
    /// `None` submits at the full default warm-up.
    pub warmup: Option<u64>,
    pub priority: u8,
    /// Poll cadence while waiting for a submitted job to finish.
    pub poll_interval: Duration,
    /// Transport/shed retry policy used by each virtual client. With
    /// `RetryPolicy::none()` every 429 counts as a shed attempt — the
    /// mode for measuring what admission control actually refuses.
    pub retry: RetryPolicy,
    /// Open-loop bound on concurrently in-flight requests; arrivals
    /// past it are dropped client-side (counted, not submitted).
    pub max_in_flight: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".into(),
            mode: Mode::Closed { concurrency: 4 },
            duration: Duration::from_secs(5),
            seed: 0xE57E_E21A,
            clients: 4,
            hit_ratio: 0.0,
            expensive_frac: 0.2,
            cheap_instructions: 200_000,
            expensive_instructions: 2_000_000,
            workload: "gamess".into(),
            warmup: Some(200_000),
            priority: 1,
            poll_interval: Duration::from_millis(5),
            retry: RetryPolicy::none(),
            max_in_flight: 256,
        }
    }
}

/// SplitMix64 step (same generator the repo uses for jitter/hashing).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform f64 in [0, 1) from a u64 draw.
fn unit(r: u64) -> f64 {
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// One planned submission.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// Index into the client-label space (`lg{client}`).
    pub client: usize,
    /// Simulator seed; repeated seeds are the cache-hit knob at work.
    pub sim_seed: u64,
    pub expensive: bool,
}

/// Sequential deterministic planner. Jobs are planned in index order
/// from one splitmix stream, so `get(i)` is identical no matter how
/// many worker threads consume the plan or in what order they ask.
struct Planner {
    opts: LoadgenOptions,
    rng: u64,
    /// Seeds of previously planned *fresh* jobs — the reuse pool the
    /// hit-ratio knob draws from.
    fresh: Vec<u64>,
    jobs: Vec<PlannedJob>,
}

impl Planner {
    fn new(opts: LoadgenOptions) -> Self {
        let rng = splitmix64(opts.seed ^ 0x10AD_6E4E);
        Self {
            opts,
            rng,
            fresh: Vec::new(),
            jobs: Vec::new(),
        }
    }

    fn draw(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    fn get(&mut self, i: usize) -> PlannedJob {
        while self.jobs.len() <= i {
            let client = (self.draw() % self.opts.clients.max(1) as u64) as usize;
            let expensive = unit(self.draw()) < self.opts.expensive_frac;
            let reuse = unit(self.draw());
            let sim_seed = if reuse < self.opts.hit_ratio && !self.fresh.is_empty() {
                let pick = (self.draw() % self.fresh.len() as u64) as usize;
                self.fresh[pick]
            } else {
                // Drawn from the planner's own stream (never zero).
                // An earlier `seed ^ (index << 1)` mix collided across
                // master seeds — two runs differing in one seed bit
                // planned *identical* sim seeds at shifted indexes, so
                // the second run's jobs became run-cache hits of the
                // first and measured the cache instead of the server.
                let s = self.draw() | 1;
                self.fresh.push(s);
                s
            };
            self.jobs.push(PlannedJob {
                client,
                sim_seed,
                expensive,
            });
        }
        self.jobs[i].clone()
    }
}

/// The spec a planned job submits.
pub fn spec_for(p: &PlannedJob, opts: &LoadgenOptions) -> JobSpec {
    JobSpec {
        workload: opts.workload.clone(),
        instructions: if p.expensive {
            opts.expensive_instructions
        } else {
            opts.cheap_instructions
        },
        seed: p.sim_seed,
        warmup: opts.warmup,
        priority: opts.priority,
        client: format!("lg{}", p.client),
        ..JobSpec::default()
    }
}

/// First `n` planned jobs (pure; used by tests and `--smoke`).
pub fn plan(opts: &LoadgenOptions, n: usize) -> Vec<PlannedJob> {
    let mut planner = Planner::new(opts.clone());
    (0..n).map(|i| planner.get(i)).collect()
}

/// Open-loop arrival offsets (µs from start) for the first `n`
/// arrivals: exponential inter-arrival times at `rps`.
pub fn arrival_offsets_us(seed: u64, n: usize, rps: f64) -> Vec<u64> {
    let mut rng = splitmix64(seed ^ 0x0A11_15A1);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        rng = splitmix64(rng);
        // 1 - unit() is in (0, 1]: ln never sees zero.
        let dt = -(1.0 - unit(rng)).ln() / rps.max(1e-9);
        t += dt * 1e6;
        out.push(t as u64);
    }
    out
}

/// Folds the first `n` planned jobs (and, in open mode, arrival
/// offsets) into one digest. Equal options + seed => equal digest; CI's
/// `--smoke` run asserts this never drifts across builds.
pub fn schedule_digest(opts: &LoadgenOptions, n: usize) -> u64 {
    let mut acc = splitmix64(opts.seed ^ n as u64);
    for p in plan(opts, n) {
        acc = splitmix64(acc ^ p.client as u64);
        acc = splitmix64(acc ^ p.sim_seed);
        acc = splitmix64(acc ^ u64::from(p.expensive));
    }
    if let Mode::Open { rps } = opts.mode {
        for off in arrival_offsets_us(opts.seed, n, rps) {
            acc = splitmix64(acc ^ off);
        }
    }
    acc
}

/// Shared mutable run state (one per load run).
#[derive(Debug, Default)]
struct Tally {
    attempts: AtomicU64,
    completed: AtomicU64,
    /// 429 sheds (queue full / rate limited / SLO).
    shed: AtomicU64,
    /// Transport errors, non-429 refusals, failed jobs.
    failed: AtomicU64,
    coalesced: AtomicU64,
    cached: AtomicU64,
    /// Open loop only: arrivals dropped at the client-side in-flight cap.
    dropped: AtomicU64,
}

/// Client-observed latency percentiles (µs).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub mean_us: f64,
}

impl Serialize for LatencySummary {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".into(), self.count.to_value()),
            ("p50_us".into(), self.p50_us.to_value()),
            ("p95_us".into(), self.p95_us.to_value()),
            ("p99_us".into(), self.p99_us.to_value()),
            ("max_us".into(), self.max_us.to_value()),
            ("mean_us".into(), Value::F64(self.mean_us)),
        ])
    }
}

impl LatencySummary {
    fn from_hist(h: &Histogram) -> Self {
        let s = h.snapshot();
        Self {
            count: s.count(),
            p50_us: s.quantile(0.5),
            p95_us: s.quantile(0.95),
            p99_us: s.quantile(0.99),
            max_us: s.max(),
            mean_us: s.mean(),
        }
    }
}

/// One load run's report (serializes to the JSON the sweep embeds).
#[derive(Debug)]
pub struct Report {
    pub mode: String,
    pub duration_s: f64,
    pub attempts: u64,
    pub completed: u64,
    pub shed: u64,
    pub failed: u64,
    pub coalesced: u64,
    pub cached: u64,
    pub dropped: u64,
    pub throughput_rps: f64,
    pub shed_rate: f64,
    /// Client-observed submit-to-done latency (µs).
    pub latency: LatencySummary,
    /// Server-side queue-wait percentiles from `/v1/status`, when the
    /// status endpoint was reachable after the run.
    pub server_queue_wait: Option<LatencySummary>,
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("mode".into(), Value::Str(self.mode.clone())),
            ("duration_s".into(), Value::F64(self.duration_s)),
            ("attempts".into(), self.attempts.to_value()),
            ("completed".into(), self.completed.to_value()),
            ("shed".into(), self.shed.to_value()),
            ("failed".into(), self.failed.to_value()),
            ("coalesced".into(), self.coalesced.to_value()),
            ("cached".into(), self.cached.to_value()),
            ("dropped".into(), self.dropped.to_value()),
            ("throughput_rps".into(), Value::F64(self.throughput_rps)),
            ("shed_rate".into(), Value::F64(self.shed_rate)),
            ("latency_us".into(), self.latency.to_value()),
        ];
        if let Some(sq) = &self.server_queue_wait {
            m.push(("server_queue_wait_us".into(), sq.to_value()));
        }
        Value::Map(m)
    }
}

/// Submits planned job `i` and blocks to completion, recording the
/// client-observed submit-to-done latency.
fn drive_one(opts: &LoadgenOptions, planner: &Mutex<Planner>, i: usize, t: &Tally, h: &Histogram) {
    let p = planner.lock().unwrap_or_else(|e| e.into_inner()).get(i);
    let spec = spec_for(&p, opts);
    t.attempts.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let resp = match client::submit_with(&opts.addr, &spec, &opts.retry, Duration::from_secs(60)) {
        Ok(r) => r,
        Err(e) => {
            let c = if e.contains("(429)") {
                &t.shed
            } else {
                &t.failed
            };
            c.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    if resp.coalesced {
        t.coalesced.fetch_add(1, Ordering::Relaxed);
    }
    if resp.cached {
        t.cached.fetch_add(1, Ordering::Relaxed);
    }
    match client::fetch(&opts.addr, resp.job, opts.poll_interval) {
        Ok(_) => {
            t.completed.fetch_add(1, Ordering::Relaxed);
            h.record_duration_us(t0.elapsed());
        }
        Err(_) => {
            t.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs one load run against a live daemon and aggregates the report.
pub fn run(opts: &LoadgenOptions) -> Report {
    let planner = Arc::new(Mutex::new(Planner::new(opts.clone())));
    let tally = Arc::new(Tally::default());
    let hist = Arc::new(Histogram::new());
    let started = Instant::now();
    match opts.mode {
        Mode::Closed { concurrency } => {
            let next = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let mut handles = Vec::new();
            for _ in 0..concurrency.max(1) {
                let (opts, planner, tally, hist, next, stop) = (
                    opts.clone(),
                    Arc::clone(&planner),
                    Arc::clone(&tally),
                    Arc::clone(&hist),
                    Arc::clone(&next),
                    Arc::clone(&stop),
                );
                handles.push(std::thread::spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    drive_one(&opts, &planner, i, &tally, &hist);
                }));
            }
            std::thread::sleep(opts.duration);
            stop.store(true, Ordering::Relaxed);
            for hd in handles {
                let _ = hd.join();
            }
        }
        Mode::Open { rps } => {
            // Plan generously past the expected arrival count; the
            // deadline, not the plan length, ends the run.
            let expected = (rps * opts.duration.as_secs_f64() * 2.0).ceil() as usize + 16;
            let offsets = arrival_offsets_us(opts.seed, expected, rps);
            let in_flight = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for (i, off) in offsets.into_iter().enumerate() {
                let due = started + Duration::from_micros(off);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if started.elapsed() >= opts.duration {
                    break;
                }
                // Client-side in-flight cap: an open-loop generator
                // must not itself die of thread exhaustion; beyond the
                // cap the arrival is dropped and counted.
                if in_flight.load(Ordering::Relaxed) >= opts.max_in_flight as u64 {
                    tally.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                in_flight.fetch_add(1, Ordering::Relaxed);
                let (opts, planner, tally, hist, in_flight) = (
                    opts.clone(),
                    Arc::clone(&planner),
                    Arc::clone(&tally),
                    Arc::clone(&hist),
                    Arc::clone(&in_flight),
                );
                handles.push(std::thread::spawn(move || {
                    drive_one(&opts, &planner, i, &tally, &hist);
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            for hd in handles {
                let _ = hd.join();
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let attempts = tally.attempts.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let completed = tally.completed.load(Ordering::Relaxed);
    Report {
        mode: opts.mode.name().into(),
        duration_s: elapsed,
        attempts,
        completed,
        shed,
        failed: tally.failed.load(Ordering::Relaxed),
        coalesced: tally.coalesced.load(Ordering::Relaxed),
        cached: tally.cached.load(Ordering::Relaxed),
        dropped: tally.dropped.load(Ordering::Relaxed),
        throughput_rps: completed as f64 / elapsed,
        shed_rate: if attempts > 0 {
            shed as f64 / attempts as f64
        } else {
            0.0
        },
        latency: LatencySummary::from_hist(&hist),
        server_queue_wait: server_queue_wait(&opts.addr),
    }
}

/// Queue-wait percentiles from `/v1/status` (best effort).
fn server_queue_wait(addr: &str) -> Option<LatencySummary> {
    let (status, body) = client::request(addr, "GET", "/v1/status", None).ok()?;
    if status != 200 {
        return None;
    }
    let v: Value = serde_json::from_str(&body).ok()?;
    let stages = v.as_map().and_then(|m| {
        m.iter()
            .find(|(k, _)| k == "stages")
            .and_then(|(_, v)| v.as_map())
    })?;
    let qw = stages
        .iter()
        .find(|(k, _)| k == "queue_wait_us")
        .and_then(|(_, v)| v.as_map())?;
    let get = |k: &str| {
        qw.iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| u64::from_value(v).ok())
            .unwrap_or(0)
    };
    Some(LatencySummary {
        count: get("count"),
        p50_us: get("p50_us"),
        p95_us: get("p95_us"),
        p99_us: get("p99_us"),
        max_us: get("max_us"),
        mean_us: qw
            .iter()
            .find(|(n, _)| n == "mean_us")
            .and_then(|(_, v)| f64::from_value(v).ok())
            .unwrap_or(0.0),
    })
}

/// Sweeps closed-loop concurrency and reports the saturation point —
/// the `BENCH_serve.json` payload. Saturation RPS is the peak completed
/// throughput over the sweep; the latency columns let the experiment
/// recipe show the knee (throughput flattens, p95 keeps climbing).
pub fn saturation_sweep(
    base: &LoadgenOptions,
    concurrencies: &[usize],
    per_point: Duration,
) -> Value {
    let mut points = Vec::new();
    let mut saturation_rps = 0.0f64;
    let mut at_saturation: Option<LatencySummary> = None;
    for (i, &c) in concurrencies.iter().enumerate() {
        let opts = LoadgenOptions {
            mode: Mode::Closed { concurrency: c },
            duration: per_point,
            // Each point gets its own planner stream. Reusing the base
            // seed verbatim would replan the identical job sequence at
            // every concurrency, turning every point after the first
            // into a run-cache replay of its predecessors — the sweep
            // would measure the cache, not the serving path.
            seed: splitmix64(base.seed ^ ((i as u64 + 1) << 32)),
            ..base.clone()
        };
        let r = run(&opts);
        if r.throughput_rps > saturation_rps {
            saturation_rps = r.throughput_rps;
            at_saturation = Some(r.latency);
        }
        points.push(Value::Map(vec![
            ("concurrency".into(), (c as u64).to_value()),
            ("throughput_rps".into(), Value::F64(r.throughput_rps)),
            ("completed".into(), r.completed.to_value()),
            ("shed".into(), r.shed.to_value()),
            ("shed_rate".into(), Value::F64(r.shed_rate)),
            ("p50_us".into(), r.latency.p50_us.to_value()),
            ("p95_us".into(), r.latency.p95_us.to_value()),
            ("p99_us".into(), r.latency.p99_us.to_value()),
        ]));
    }
    Value::Map(vec![
        ("bench".into(), Value::Str("serve_saturation".into())),
        ("workload".into(), Value::Str(base.workload.clone())),
        ("seed".into(), base.seed.to_value()),
        ("hit_ratio".into(), Value::F64(base.hit_ratio)),
        ("expensive_frac".into(), Value::F64(base.expensive_frac)),
        (
            "cheap_instructions".into(),
            base.cheap_instructions.to_value(),
        ),
        (
            "expensive_instructions".into(),
            base.expensive_instructions.to_value(),
        ),
        (
            "warmup_cycles".into(),
            base.warmup.map(|w| w.to_value()).unwrap_or(Value::Null),
        ),
        (
            "per_point_seconds".into(),
            Value::F64(per_point.as_secs_f64()),
        ),
        ("points".into(), Value::Seq(points)),
        ("saturation_rps".into(), Value::F64(saturation_rps)),
        (
            "latency_at_saturation_us".into(),
            at_saturation.map(|l| l.to_value()).unwrap_or(Value::Null),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_request_order_independent() {
        let opts = LoadgenOptions::default();
        let a = plan(&opts, 200);
        let b = plan(&opts, 200);
        assert_eq!(a, b);
        // Out-of-order consumption sees the same plan.
        let mut planner = Planner::new(opts.clone());
        let late = planner.get(150);
        assert_eq!(late, a[150]);
        assert_eq!(planner.get(0), a[0]);
    }

    #[test]
    fn hit_ratio_zero_means_unique_seeds() {
        let opts = LoadgenOptions {
            hit_ratio: 0.0,
            ..LoadgenOptions::default()
        };
        let jobs = plan(&opts, 500);
        let mut seeds: Vec<u64> = jobs.iter().map(|p| p.sim_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 500, "no duplicate sim seeds at hit_ratio 0");
    }

    /// Regression: fresh seeds planned under two different master seeds
    /// must be disjoint. The old `seed ^ (index << 1)` derivation let a
    /// one-bit master-seed difference plan identical sim seeds at
    /// shifted indexes — against a daemon with a warm run cache (the
    /// cache is keyed by spec fingerprint, which includes the sim
    /// seed), a second load run then measured cache hits instead of
    /// queue behavior.
    #[test]
    fn different_master_seeds_plan_disjoint_sim_seeds() {
        let mk = |seed: u64| LoadgenOptions {
            seed,
            hit_ratio: 0.0,
            ..LoadgenOptions::default()
        };
        // One-bit deltas are exactly what the overload e2e uses for its
        // phases, and exactly what the old derivation collided on.
        for delta in [1u64 << 4, 1 << 0, 1 << 63, 0xFFFF] {
            let a: Vec<u64> = plan(&mk(0xAD20), 300).iter().map(|p| p.sim_seed).collect();
            let b: Vec<u64> = plan(&mk(0xAD20 ^ delta), 300)
                .iter()
                .map(|p| p.sim_seed)
                .collect();
            let overlap = a.iter().filter(|s| b.contains(s)).count();
            assert_eq!(
                overlap, 0,
                "seed delta {delta:#x} shared {overlap} sim seeds"
            );
        }
    }

    #[test]
    fn hit_ratio_produces_repeats_near_the_knob() {
        let opts = LoadgenOptions {
            hit_ratio: 0.5,
            ..LoadgenOptions::default()
        };
        let jobs = plan(&opts, 1000);
        let mut seeds: Vec<u64> = jobs.iter().map(|p| p.sim_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        let repeats = 1000 - seeds.len();
        assert!(
            (350..=650).contains(&repeats),
            "~50% of 1000 jobs should reuse a seed, got {repeats}"
        );
    }

    #[test]
    fn expensive_fraction_tracks_the_knob() {
        let opts = LoadgenOptions {
            expensive_frac: 0.25,
            ..LoadgenOptions::default()
        };
        let n = plan(&opts, 2000).iter().filter(|p| p.expensive).count();
        assert!((350..=650).contains(&n), "~25% of 2000, got {n}");
    }

    #[test]
    fn arrivals_are_exponential_at_roughly_the_target_rate() {
        let offs = arrival_offsets_us(7, 4000, 100.0);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
        // 4000 arrivals at 100/s should span ~40s.
        let span_s = *offs.last().unwrap() as f64 / 1e6;
        assert!(
            (30.0..=50.0).contains(&span_s),
            "span {span_s}s for 4000 arrivals at 100rps"
        );
    }

    #[test]
    fn schedule_digest_is_stable_and_seed_sensitive() {
        let opts = LoadgenOptions::default();
        assert_eq!(schedule_digest(&opts, 64), schedule_digest(&opts, 64));
        let other = LoadgenOptions {
            seed: opts.seed + 1,
            ..opts.clone()
        };
        assert_ne!(schedule_digest(&opts, 64), schedule_digest(&other, 64));
        // Arrival schedule participates in open mode.
        let open_a = LoadgenOptions {
            mode: Mode::Open { rps: 50.0 },
            ..opts.clone()
        };
        let open_b = LoadgenOptions {
            mode: Mode::Open { rps: 60.0 },
            ..opts
        };
        assert_ne!(schedule_digest(&open_a, 64), schedule_digest(&open_b, 64));
    }

    #[test]
    fn specs_carry_the_job_class_and_client_label() {
        let opts = LoadgenOptions::default();
        for p in plan(&opts, 50) {
            let spec = spec_for(&p, &opts);
            assert_eq!(spec.workload, "gamess");
            assert_eq!(spec.client, format!("lg{}", p.client));
            let want = if p.expensive {
                opts.expensive_instructions
            } else {
                opts.cheap_instructions
            };
            assert_eq!(spec.instructions, want);
        }
    }
}
