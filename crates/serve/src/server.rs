//! The daemon: HTTP front end + scheduler + resident worker pool.
//!
//! Data flow: `POST /v1/jobs` resolves the spec, fingerprints it, and
//! either (a) returns a run-cache hit as an immediately-done job, (b)
//! coalesces onto an identical in-flight job, or (c) enqueues a new job
//! in the bounded [`JobQueue`] (full queue => 429 shed). A single
//! scheduler thread pops in priority/fairness order and hands jobs to a
//! long-lived [`WorkerPool`]; each execution is panic-isolated, so an
//! invalid configuration (the simulator validates with asserts) fails
//! that one job while the daemon keeps serving.
//!
//! Every state transition is journaled; on restart, finished jobs are
//! re-materialized from the run cache and unfinished ones are re-queued
//! (see [`crate::journal`]).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use esteem_core::Simulator;
use esteem_harness::runcache;
use esteem_par::WorkerPool;
use esteem_stats::{
    labeled, HistogramSnapshot, IntervalObserver, IntervalSample, Scope, StatsReading, StatsSource,
};
use esteem_trace::{EventKind, TraceEvent, TraceFilter, Tracer};
use serde::{Serialize, Value};

use crate::admission::{AdmissionControl, AdmissionOptions, Shed, ShedReason};
use crate::cluster::{ClusterAgent, ClusterConfig};
use crate::http::{Handler, HandlerResult, HttpCounters, HttpServer};
use crate::job::{EventStream, Job, JobSpec, JobState};
use crate::journal::{recover, Journal, RecoveredOutcome};
use crate::observe::{flight_dump_value, FlightRecorder, JobTiming, Outcome, ServeMetrics};
use crate::queue::{JobQueue, PushError, QueuedJob};

/// Crate version, exported as a `build_info` label and in `/v1/status`.
const VERSION: &str = env!("CARGO_PKG_VERSION");
/// Git revision baked in at build time (`ESTEEM_GIT_HASH`), when the
/// build script or CI sets it.
const GIT_HASH: &str = match option_env!("ESTEEM_GIT_HASH") {
    Some(h) => h,
    None => "unknown",
};
/// Prometheus text exposition content type served on `/metrics`.
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Daemon configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Resident worker threads executing simulations.
    pub workers: usize,
    /// Queue bound: submissions beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Append-only journal path (`None` disables crash recovery).
    pub journal_path: Option<PathBuf>,
    /// Start with the scheduler paused (tests and drain-and-inspect
    /// operation; resume with [`Daemon::resume`]).
    pub start_paused: bool,
    /// How long shutdown waits for open connections to finish.
    pub drain_timeout: Duration,
    /// Ring-buffer tracer capacity; 0 disables tracing.
    pub trace_events: usize,
    /// Flight-recorder depth: how many recent per-job stage timing
    /// records `GET /v1/flight-recorder` can return.
    pub flight_recorder_jobs: usize,
    /// Where to write a flight-recorder dump when a job panics
    /// (`None` disables the crash dump).
    pub flight_dump: Option<PathBuf>,
    /// Join a cluster as a worker: register/heartbeat with this
    /// coordinator (`None` = standalone daemon).
    pub cluster: Option<ClusterConfig>,
    /// Front-door admission control (token buckets + SLO shedding).
    /// Disabled unless a rate limit or SLO is configured; the bounded
    /// queue's 429-on-full backstop applies regardless.
    pub admission: AdmissionOptions,
    /// Queue priority aging: bump effective priority one level per this
    /// many pops spent waiting (0 = off). See [`JobQueue::with_aging`].
    pub aging_pops: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            journal_path: None,
            start_paused: false,
            drain_timeout: Duration::from_secs(10),
            trace_events: 1 << 16,
            flight_recorder_jobs: 256,
            flight_dump: None,
            cluster: None,
            admission: AdmissionOptions::default(),
            aging_pops: 0,
        }
    }
}

/// Daemon-level counters, exported under `serve/` in `/metrics`.
#[derive(Debug, Default)]
pub struct ServeCounters {
    pub submitted: AtomicU64,
    pub coalesced: AtomicU64,
    /// Submissions answered straight from the run cache.
    pub cached: AtomicU64,
    /// Submissions shed because the queue was full.
    pub shed: AtomicU64,
    /// Submissions shed by a per-client token bucket.
    pub shed_rate_limited: AtomicU64,
    /// Submissions shed because windowed queue-wait p95 breached the SLO.
    pub shed_slo: AtomicU64,
    /// Submissions rejected at resolve time (bad spec).
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Jobs reconstructed from the journal at startup.
    pub recovered: AtomicU64,
    /// Corrupt/torn journal lines skipped during recovery.
    pub journal_skipped: AtomicU64,
}

impl StatsSource for ServeCounters {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("jobs_submitted", self.submitted.load(Ordering::Relaxed));
        out.counter("jobs_coalesced", self.coalesced.load(Ordering::Relaxed));
        out.counter("jobs_cached", self.cached.load(Ordering::Relaxed));
        out.counter("jobs_shed", self.shed.load(Ordering::Relaxed));
        out.counter(
            "jobs_shed_rate_limited",
            self.shed_rate_limited.load(Ordering::Relaxed),
        );
        out.counter("jobs_shed_slo", self.shed_slo.load(Ordering::Relaxed));
        out.counter("jobs_rejected", self.rejected.load(Ordering::Relaxed));
        out.counter("jobs_completed", self.completed.load(Ordering::Relaxed));
        out.counter("jobs_failed", self.failed.load(Ordering::Relaxed));
        out.counter("jobs_recovered", self.recovered.load(Ordering::Relaxed));
        out.counter(
            "journal_skipped_lines",
            self.journal_skipped.load(Ordering::Relaxed),
        );
    }
}

/// Two-state gate for the scheduler (pause/resume).
#[derive(Debug, Default)]
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn set(&self, paused: bool) {
        *self.paused.lock().unwrap_or_else(|e| e.into_inner()) = paused;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut paused = self.paused.lock().unwrap_or_else(|e| e.into_inner());
        while *paused {
            paused = self.cv.wait(paused).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct State {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    /// fingerprint -> primary job id, for every job not yet terminal.
    inflight: Mutex<HashMap<u64, u64>>,
    queue: JobQueue,
    journal: Journal,
    counters: ServeCounters,
    tracer: Tracer,
    gate: Gate,
    /// Signaled by `POST /v1/shutdown`.
    shutdown: (Mutex<bool>, Condvar),
    /// Filled in once the HTTP server is bound (the server owns them).
    http_counters: Mutex<Option<Arc<HttpCounters>>>,
    /// The resident execution pool (instrumented): shared so the
    /// scheduler feeds it while `/metrics` and `/v1/status` read queue
    /// depth, task latency, and per-worker utilization off it.
    pool: Arc<WorkerPool>,
    /// Stage-latency histograms + uptime clock.
    metrics: ServeMetrics,
    /// Recent per-job stage timings for `/v1/flight-recorder`.
    flight: FlightRecorder,
    /// Crash-dump target when a job panics.
    flight_dump: Option<PathBuf>,
    /// Cluster membership agent (workers only; filled in after bind).
    cluster: Mutex<Option<Arc<ClusterAgent>>>,
    /// Front-door admission control; `None` when fully disabled.
    admission: Option<AdmissionControl>,
}

impl State {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    fn add_job(&self, job: Arc<Job>) {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job.id, job);
    }

    fn remove_job(&self, id: u64) {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn request_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    fn wait_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        let mut flag = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = cv.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Streams interval samples into the job's event buffer as JSONL.
struct EventSink {
    events: Arc<crate::job::JobEvents>,
}

impl IntervalObserver for EventSink {
    fn on_interval(&mut self, sample: &IntervalSample) {
        self.events
            .push(serde_json::to_string(sample).expect("sample serializes"));
    }
}

/// A running daemon. Dropping it without [`Daemon::wait`] aborts
/// ungracefully; the intended lifecycle is `spawn` -> (work) -> HTTP
/// shutdown or [`Daemon::shutdown`] -> `wait`.
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<State>,
    http: Option<std::thread::JoinHandle<bool>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    http_handle: crate::http::ServerHandle,
}

impl Daemon {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pauses the scheduler: queued jobs stay queued. Running jobs are
    /// unaffected.
    pub fn pause(&self) {
        self.state.gate.set(true);
    }

    pub fn resume(&self) {
        self.state.gate.set(false);
    }

    /// Programmatic equivalent of `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Counter snapshot (tests; the HTTP view is `/metrics`).
    pub fn counters(&self) -> &ServeCounters {
        &self.state.counters
    }

    /// Drains the daemon's tracer ring (queue-wait/cache/run spans and
    /// run-cache hit/miss events).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.state.tracer.drain()
    }

    /// The daemon's stage-latency histograms. Recording methods are
    /// public, which doubles as the injection point for latency tests:
    /// record known values, then read them back via `/v1/status`.
    pub fn serve_metrics(&self) -> &ServeMetrics {
        &self.state.metrics
    }

    /// Recent per-job stage timings (the `/v1/flight-recorder` view).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.state.flight
    }

    /// Blocks until shutdown is requested, then drains: the queue
    /// closes, every already-accepted job still runs to completion, the
    /// worker pool joins, and the HTTP listener stops. Returns `true`
    /// when all connections drained within the timeout.
    pub fn wait(mut self) -> bool {
        self.state.wait_shutdown();
        // Leave the cluster first: the coordinator stops routing new
        // work here while we drain what we already accepted.
        let agent = self
            .state
            .cluster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(agent) = agent {
            agent.stop_and_deregister();
        }
        // No new pushes; scheduler drains the queue then exits.
        self.state.queue.close();
        // Unpause: a paused scheduler must still drain on shutdown.
        self.state.gate.set(false);
        if let Some(s) = self.scheduler.take() {
            let _ = s.join();
        }
        // The scheduler joined the pool before exiting, so every job is
        // now terminal; close any event streams of jobs that never ran.
        for job in self
            .state
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            job.events.close();
        }
        self.http_handle.stop();
        match self.http.take() {
            Some(h) => h.join().unwrap_or(false),
            None => true,
        }
    }
}

/// Binds, recovers the journal, and starts the scheduler + HTTP threads.
pub fn spawn(opts: ServerOptions) -> std::io::Result<Daemon> {
    let tracer = if opts.trace_events > 0 {
        Tracer::ring(opts.trace_events, TraceFilter::all())
    } else {
        Tracer::off()
    };
    let journal = match &opts.journal_path {
        Some(p) => Journal::open(p)?,
        None => Journal::none(),
    };
    let state = Arc::new(State {
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(0),
        inflight: Mutex::new(HashMap::new()),
        queue: JobQueue::new(opts.queue_capacity).with_aging(opts.aging_pops),
        journal,
        counters: ServeCounters::default(),
        tracer,
        gate: Gate::default(),
        shutdown: (Mutex::new(false), Condvar::new()),
        http_counters: Mutex::new(None),
        pool: Arc::new(WorkerPool::instrumented(
            opts.workers,
            opts.workers.max(1) * 2,
        )),
        metrics: ServeMetrics::new(),
        flight: FlightRecorder::new(opts.flight_recorder_jobs),
        flight_dump: opts.flight_dump.clone(),
        cluster: Mutex::new(None),
        admission: opts
            .admission
            .enabled()
            .then(|| AdmissionControl::new(opts.admission.clone())),
    });
    state.gate.set(opts.start_paused);

    if let Some(path) = &opts.journal_path {
        recover_jobs(&state, path)?;
    }

    let sched_state = Arc::clone(&state);
    let scheduler = std::thread::Builder::new()
        .name("esteem-serve-sched".into())
        .spawn(move || scheduler_loop(&sched_state))
        .expect("spawn scheduler");

    let handler = make_handler(Arc::clone(&state));
    let server = HttpServer::bind(&opts.addr, handler)?;
    let addr = server.local_addr();
    let http_handle = server.handle();
    *state
        .http_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&server.counters));
    // The agent needs the bound address (ephemeral-port workers
    // advertise it), so it starts only now.
    if let Some(cfg) = opts.cluster.clone() {
        *state.cluster.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(ClusterAgent::spawn(cfg, addr));
    }
    let drain = opts.drain_timeout;
    let http = std::thread::Builder::new()
        .name("esteem-serve-http".into())
        .spawn(move || server.serve(drain))
        .expect("spawn http thread");

    Ok(Daemon {
        addr,
        state,
        http: Some(http),
        scheduler: Some(scheduler),
        http_handle,
    })
}

fn recover_jobs(state: &Arc<State>, path: &std::path::Path) -> std::io::Result<()> {
    let rec = recover(path)?;
    if rec.skipped_lines > 0 {
        eprintln!(
            "esteem-serve: journal {}: skipped {} corrupt line(s) during recovery",
            path.display(),
            rec.skipped_lines
        );
        state
            .counters
            .journal_skipped
            .fetch_add(rec.skipped_lines, Ordering::Relaxed);
    }
    state.next_id.store(rec.max_id, Ordering::Relaxed);
    for r in rec.jobs {
        let job = Arc::new(Job::new(r.id, r.spec, r.fingerprint));
        match r.outcome {
            RecoveredOutcome::Done => match runcache::lookup(r.fingerprint) {
                Some(report) => {
                    job.set_state(JobState::Done(Box::new(report)));
                    job.events.close();
                }
                // Result evicted from the cache: re-run (deterministic,
                // so the client sees the identical report).
                None => requeue_recovered(state, &job),
            },
            RecoveredOutcome::Failed(err) => {
                job.set_state(JobState::Failed(err));
                job.events.close();
            }
            RecoveredOutcome::Unfinished => requeue_recovered(state, &job),
        }
        state.counters.recovered.fetch_add(1, Ordering::Relaxed);
        state.add_job(job);
    }
    Ok(())
}

fn requeue_recovered(state: &Arc<State>, job: &Arc<Job>) {
    job.set_state(JobState::Queued);
    job.born_at_us
        .store(state.metrics.now_us(), Ordering::Relaxed);
    state
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(job.fingerprint, job.id);
    let _ = state.queue.push_recovered(QueuedJob {
        job_id: job.id,
        priority: job.spec.priority,
        client: job.spec.client.clone(),
    });
}

fn scheduler_loop(state: &Arc<State>) {
    loop {
        state.gate.wait_open();
        let Some(queued) = state.queue.pop_blocking() else {
            break;
        };
        let Some(job) = state.job(queued.job_id) else {
            continue;
        };
        state.journal.start(job.id);
        job.set_state(JobState::Running);
        let queue_wait_us = state
            .metrics
            .now_us()
            .saturating_sub(job.born_at_us.load(Ordering::Relaxed));
        state.metrics.queue_wait_us.record(queue_wait_us);
        emit_queue_wait(state, &job);
        let exec_state = Arc::clone(state);
        // `submit` blocks when the pool's feed queue is full — that is
        // fine here: backpressure belongs at the bounded JobQueue, and
        // the scheduler blocking just leaves jobs queued there.
        let _ = state
            .pool
            .submit(Box::new(move || execute(&exec_state, &job, queue_wait_us)));
    }
    // Queue closed and drained: wait for in-flight executions. The
    // workers themselves join when the pool drops with the state (its
    // Drop closes intake and joins).
    state.pool.wait_idle();
}

/// Records the queue-wait span for a job that just left the queue.
fn emit_queue_wait(state: &Arc<State>, job: &Arc<Job>) {
    let t = &state.tracer;
    if !t.enabled(EventKind::Span) {
        return;
    }
    let end_us = t.elapsed_us();
    let start_us = f64::from_bits(job.queued_at_us.load(Ordering::Relaxed));
    t.emit(EventKind::Span, || TraceEvent::Span {
        name: format!("job{}.queue_wait", job.id),
        start_us,
        dur_us: (end_us - start_us).max(0.0),
    });
}

/// Runs one job on a worker thread with panic isolation, timing each
/// pipeline stage for the histograms and the flight recorder.
fn execute(state: &Arc<State>, job: &Arc<Job>, queue_wait_us: u64) {
    let fp = job.fingerprint;
    // Stage durations land here from inside the panic-isolated closure;
    // on a panic whatever stages completed keep their timings.
    let cache_lookup_us = AtomicU64::new(0);
    let run_us = AtomicU64::new(0);
    let serialize_us = AtomicU64::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let cached = {
            let _span = state.tracer.span("job.cache_lookup");
            let t0 = Instant::now();
            let cached = runcache::lookup(fp);
            cache_lookup_us.store(elapsed_us(t0), Ordering::Relaxed);
            cached
        };
        if let Some(report) = cached {
            return report;
        }
        let _span = state.tracer.span("job.run");
        let resolved = job
            .spec
            .resolve()
            .expect("spec resolved at submit; workloads/techniques are static");
        // Thread count is a pure throughput knob (reports are
        // byte-identical), so it is safe to apply here even though it is
        // not part of the fingerprint the cache lookup above used.
        let sim = Simulator::new(resolved.cfg, &resolved.profiles, &resolved.label)
            .with_threads(job.spec.threads.max(1))
            .with_observer(Box::new(EventSink {
                events: Arc::clone(&job.events),
            }));
        let t0 = Instant::now();
        let report = sim.run();
        run_us.store(elapsed_us(t0), Ordering::Relaxed);
        let t0 = Instant::now();
        runcache::insert(fp, &report);
        serialize_us.store(elapsed_us(t0), Ordering::Relaxed);
        report
    }));
    let outcome = match result {
        Ok(report) => {
            state.journal.done(job.id);
            state.counters.completed.fetch_add(1, Ordering::Relaxed);
            job.set_state(JobState::Done(Box::new(report)));
            Outcome::Done
        }
        Err(payload) => {
            let msg = esteem_par::panic_message(payload.as_ref());
            state.journal.fail(job.id, &msg);
            state.counters.failed.fetch_add(1, Ordering::Relaxed);
            job.set_state(JobState::Failed(msg));
            Outcome::Failed
        }
    };
    let cache_lookup_us = cache_lookup_us.load(Ordering::Relaxed);
    let run_us = run_us.load(Ordering::Relaxed);
    let serialize_us = serialize_us.load(Ordering::Relaxed);
    state.metrics.cache_lookup_us.record(cache_lookup_us);
    if run_us > 0 {
        state.metrics.run_us.record(run_us);
        state.metrics.serialize_us.record(serialize_us);
    }
    let e2e_us = state
        .metrics
        .now_us()
        .saturating_sub(job.born_at_us.load(Ordering::Relaxed));
    state.metrics.record_e2e(outcome, &job.spec.client, e2e_us);
    state.flight.record(JobTiming {
        job: job.id,
        client: job.spec.client.clone(),
        workload: job.spec.workload.clone(),
        outcome,
        fingerprint: fp,
        queue_wait_us,
        cache_lookup_us,
        run_us,
        serialize_us,
        e2e_us,
    });
    if outcome == Outcome::Failed {
        dump_flight_recorder(state);
    }
    state
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&fp);
    job.events.close();
}

fn elapsed_us(t0: Instant) -> u64 {
    t0.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Best-effort crash dump: recent job timings + the tracer ring, as the
/// `/v1/flight-recorder` body, written to the configured path.
fn dump_flight_recorder(state: &State) {
    let Some(path) = &state.flight_dump else {
        return;
    };
    let body = flight_recorder_body(state);
    if let Err(e) = std::fs::write(path, &body) {
        eprintln!(
            "esteem-serve: writing flight-recorder dump {}: {e}",
            path.display()
        );
    }
}

/// Submit outcome, for the response body.
enum Submitted {
    New(u64),
    Coalesced(u64),
    Cached(u64),
}

/// Submit refusal: HTTP status, body message, and (for 429 sheds) the
/// `Retry-After` hint the admission layer or queue-wait history derived.
struct Reject {
    status: u16,
    msg: String,
    retry_after_ms: Option<u64>,
}

impl Reject {
    fn plain(status: u16, msg: impl Into<String>) -> Self {
        Self {
            status,
            msg: msg.into(),
            retry_after_ms: None,
        }
    }
}

/// `Retry-After` hint for queue-full sheds: queue-wait p50 says how
/// long a slot typically takes to open; default 1s before any job has
/// flowed through, capped so a latency spike cannot park clients.
fn queue_full_retry_hint_ms(state: &State) -> u64 {
    let snap = state.metrics.queue_wait_us.snapshot();
    if snap.count() == 0 {
        return 1_000;
    }
    (snap.quantile(0.5) / 1_000).clamp(1, 30_000)
}

fn submit(state: &Arc<State>, spec: JobSpec) -> Result<Submitted, Reject> {
    let born_at_us = state.metrics.now_us();
    let resolved = spec.resolve().map_err(|e| {
        state.counters.rejected.fetch_add(1, Ordering::Relaxed);
        Reject::plain(400, e)
    })?;
    let fp = resolved.fingerprint;

    // Admission control runs after resolve (malformed specs stay 400)
    // but before coalesce/cache: an overloaded daemon sheds cheap-to-
    // serve duplicates too, which keeps the check one lock-free read
    // away from the hot path and the 429 semantics uniform.
    if let Some(ac) = &state.admission {
        if let Err(shed) = ac.admit(
            &spec.client,
            state.metrics.now_us(),
            &state.metrics.queue_wait_us,
        ) {
            let Shed {
                reason,
                retry_after_ms,
            } = shed;
            state.counters.shed.fetch_add(1, Ordering::Relaxed);
            let counter = match reason {
                ShedReason::RateLimited => &state.counters.shed_rate_limited,
                ShedReason::SloBreached => &state.counters.shed_slo,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            return Err(Reject {
                status: 429,
                msg: match reason {
                    ShedReason::RateLimited => format!("rate limited: {}", spec.client),
                    ShedReason::SloBreached => "shedding load: queue-wait SLO breached".into(),
                },
                retry_after_ms: Some(retry_after_ms),
            });
        }
    }

    // Coalesce + enqueue under the inflight lock, so a duplicate either
    // sees the primary (and coalesces) or races cleanly to be primary.
    let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&primary) = inflight.get(&fp) {
        if let Some(job) = state.job(primary) {
            if !job.state().is_terminal() {
                job.coalesced.fetch_add(1, Ordering::Relaxed);
                state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                state.journal.coalesce(primary);
                return Ok(Submitted::Coalesced(primary));
            }
        }
        inflight.remove(&fp);
    }

    // Run-cache hit: the job is born done.
    let lookup_t0 = Instant::now();
    let hit = runcache::lookup(fp);
    let cache_lookup_us = elapsed_us(lookup_t0);
    if let Some(report) = hit {
        drop(inflight);
        let id = state.alloc_id();
        let job = Arc::new(Job::new(id, spec.clone(), fp));
        state.journal.submit(id, fp, &spec);
        state.journal.done(id);
        job.set_state(JobState::Done(Box::new(report)));
        job.events.close();
        state.counters.submitted.fetch_add(1, Ordering::Relaxed);
        state.counters.cached.fetch_add(1, Ordering::Relaxed);
        state.counters.completed.fetch_add(1, Ordering::Relaxed);
        state.add_job(job);
        state.metrics.cache_lookup_us.record(cache_lookup_us);
        let e2e_us = state.metrics.now_us().saturating_sub(born_at_us);
        state
            .metrics
            .record_e2e(Outcome::Cached, &spec.client, e2e_us);
        state.flight.record(JobTiming {
            job: id,
            client: spec.client.clone(),
            workload: spec.workload,
            outcome: Outcome::Cached,
            fingerprint: fp,
            queue_wait_us: 0,
            cache_lookup_us,
            run_us: 0,
            serialize_us: 0,
            e2e_us,
        });
        return Ok(Submitted::Cached(id));
    }

    let id = state.alloc_id();
    let job = Arc::new(Job::new(id, spec.clone(), fp));
    job.queued_at_us
        .store(state.tracer.elapsed_us().to_bits(), Ordering::Relaxed);
    job.born_at_us.store(born_at_us, Ordering::Relaxed);
    // Publish the job before enqueueing its id: the scheduler may pop
    // the entry the instant `push` releases the queue lock, and it must
    // find the job in the table.
    state.add_job(Arc::clone(&job));
    match state.queue.push(QueuedJob {
        job_id: id,
        priority: spec.priority,
        client: spec.client.clone(),
    }) {
        Ok(()) => {
            inflight.insert(fp, id);
            state.journal.submit(id, fp, &spec);
            state.counters.submitted.fetch_add(1, Ordering::Relaxed);
            Ok(Submitted::New(id))
        }
        Err(PushError::Full) => {
            state.remove_job(id);
            state.counters.shed.fetch_add(1, Ordering::Relaxed);
            Err(Reject {
                status: 429,
                msg: "queue full".into(),
                retry_after_ms: Some(queue_full_retry_hint_ms(state)),
            })
        }
        Err(PushError::Closed) => {
            state.remove_job(id);
            Err(Reject::plain(503, "daemon is shutting down"))
        }
    }
}

fn json_err(status: u16, msg: &str) -> HandlerResult {
    HandlerResult::Json(
        status,
        serde_json::to_string(&Value::Map(vec![("error".into(), Value::Str(msg.into()))]))
            .expect("serializes"),
    )
}

/// A [`Reject`] as a response: the error body plus, when a retry hint
/// is present, both the standard seconds-granularity `Retry-After` and
/// the precise `retry-after-ms` extension header.
fn reject_response(reject: &Reject) -> HandlerResult {
    let body = serde_json::to_string(&Value::Map(vec![(
        "error".into(),
        Value::Str(reject.msg.clone()),
    )]))
    .expect("serializes");
    match reject.retry_after_ms {
        Some(ms) => HandlerResult::JsonHeaders(
            reject.status,
            body,
            vec![
                ("Retry-After".into(), ms.div_ceil(1_000).max(1).to_string()),
                ("retry-after-ms".into(), ms.to_string()),
            ],
        ),
        None => HandlerResult::Json(reject.status, body),
    }
}

fn job_status_body(job: &Job) -> String {
    let state = job.state();
    let mut m: Vec<(String, Value)> = vec![
        ("job".into(), job.id.to_value()),
        ("state".into(), Value::Str(state.name().into())),
        ("workload".into(), Value::Str(job.spec.workload.clone())),
        (
            "fingerprint".into(),
            Value::Str(format!("{:016x}", job.fingerprint)),
        ),
        (
            "coalesced".into(),
            job.coalesced.load(Ordering::Relaxed).to_value(),
        ),
    ];
    match state {
        JobState::Done(report) => m.push(("result".into(), report.to_value())),
        JobState::Failed(err) => m.push(("error".into(), Value::Str(err))),
        _ => {}
    }
    serde_json::to_string(&Value::Map(m)).expect("serializes")
}

fn metrics_body(state: &State) -> String {
    let mut r = StatsReading::new();
    r.register("serve", &state.counters);
    r.register("serve", &state.metrics);
    r.register("pool", &*state.pool);
    r.scope("serve", |s| {
        s.gauge("queue_depth", state.queue.len() as f64);
        s.gauge(
            "jobs_tracked",
            state.jobs.lock().unwrap_or_else(|e| e.into_inner()).len() as f64,
        );
        // Constant-1 info metric: the labels carry the payload.
        s.counter(
            &labeled("build_info", &[("version", VERSION), ("git", GIT_HASH)]),
            1,
        );
    });
    let cs = runcache::cache_stats();
    r.scope("runcache", |s| {
        s.counter("hits", cs.hits);
        s.counter("misses", cs.misses);
        s.counter("disk_evictions", cs.disk_evictions);
        s.gauge("mem_entries", cs.mem_entries as f64);
    });
    let agent = state
        .cluster
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(agent) = agent {
        r.register("cluster", &*agent);
    }
    let hc = state
        .http_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(hc) = hc {
        r.scope("http", |s| {
            s.counter("accepted", hc.accepted.load(Ordering::Relaxed));
            s.counter("requests", hc.requests.load(Ordering::Relaxed));
            s.counter("responses_2xx", hc.responses_2xx.load(Ordering::Relaxed));
            s.counter("responses_4xx", hc.responses_4xx.load(Ordering::Relaxed));
            s.counter("responses_5xx", hc.responses_5xx.load(Ordering::Relaxed));
            s.counter("parse_errors", hc.parse_errors.load(Ordering::Relaxed));
        });
    }
    r.render_text()
}

/// Percentile summary of one stage histogram for `/v1/status`, plus a
/// compact bucket array for sparkline rendering.
fn stage_value(snap: &HistogramSnapshot) -> Value {
    Value::Map(vec![
        ("count".into(), snap.count().to_value()),
        ("p50_us".into(), snap.quantile(0.5).to_value()),
        ("p95_us".into(), snap.quantile(0.95).to_value()),
        ("p99_us".into(), snap.quantile(0.99).to_value()),
        ("max_us".into(), snap.max().to_value()),
        ("mean_us".into(), Value::F64(snap.mean())),
        (
            "cells".into(),
            Value::Seq(
                snap.compact_cells(24)
                    .iter()
                    .map(|c| c.to_value())
                    .collect(),
            ),
        ),
    ])
}

/// `GET /v1/status`: one JSON snapshot of everything `esteem-top`
/// renders — identity, uptime, queue/jobs, run-cache hit rate, worker
/// utilization, and per-stage latency percentiles.
fn status_body(state: &State) -> String {
    let mut by_state = [0u64; 4]; // queued, running, done, failed
    let tracked = {
        let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        for job in jobs.values() {
            let i = match job.state() {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done(_) => 2,
                JobState::Failed(_) => 3,
            };
            by_state[i] += 1;
        }
        jobs.len() as u64
    };
    let c = &state.counters;
    let counters = Value::Map(vec![
        (
            "submitted".into(),
            c.submitted.load(Ordering::Relaxed).to_value(),
        ),
        (
            "coalesced".into(),
            c.coalesced.load(Ordering::Relaxed).to_value(),
        ),
        ("cached".into(), c.cached.load(Ordering::Relaxed).to_value()),
        ("shed".into(), c.shed.load(Ordering::Relaxed).to_value()),
        (
            "shed_rate_limited".into(),
            c.shed_rate_limited.load(Ordering::Relaxed).to_value(),
        ),
        (
            "shed_slo".into(),
            c.shed_slo.load(Ordering::Relaxed).to_value(),
        ),
        (
            "rejected".into(),
            c.rejected.load(Ordering::Relaxed).to_value(),
        ),
        (
            "completed".into(),
            c.completed.load(Ordering::Relaxed).to_value(),
        ),
        ("failed".into(), c.failed.load(Ordering::Relaxed).to_value()),
    ]);
    let cs = runcache::cache_stats();
    let lookups = cs.hits + cs.misses;
    let runcache = Value::Map(vec![
        ("hits".into(), cs.hits.to_value()),
        ("misses".into(), cs.misses.to_value()),
        (
            "hit_rate".into(),
            Value::F64(if lookups > 0 {
                cs.hits as f64 / lookups as f64
            } else {
                0.0
            }),
        ),
    ]);
    let pm = state.pool.metrics();
    let per_worker: Vec<Value> = pm
        .map(|m| {
            (0..m.workers())
                .map(|i| Value::F64(m.worker_utilization(i)))
                .collect()
        })
        .unwrap_or_default();
    let workers = Value::Map(vec![
        ("count".into(), (per_worker.len() as u64).to_value()),
        ("active".into(), (state.pool.active() as u64).to_value()),
        (
            "pool_queue".into(),
            (state.pool.pending() as u64).to_value(),
        ),
        (
            "utilization".into(),
            Value::F64(pm.map(|m| m.mean_utilization()).unwrap_or(0.0)),
        ),
        ("per_worker".into(), Value::Seq(per_worker)),
        (
            "task_us".into(),
            pm.map(|m| stage_value(&m.task_us())).unwrap_or(Value::Null),
        ),
    ]);
    let m = &state.metrics;
    let stages = Value::Map(vec![
        ("submit_us".into(), stage_value(&m.submit_us.snapshot())),
        (
            "queue_wait_us".into(),
            stage_value(&m.queue_wait_us.snapshot()),
        ),
        (
            "cache_lookup_us".into(),
            stage_value(&m.cache_lookup_us.snapshot()),
        ),
        ("run_us".into(), stage_value(&m.run_us.snapshot())),
        (
            "serialize_us".into(),
            stage_value(&m.serialize_us.snapshot()),
        ),
    ]);
    let e2e = Value::Map(
        [Outcome::Done, Outcome::Failed, Outcome::Cached]
            .iter()
            .map(|&o| (o.name().to_owned(), stage_value(&m.e2e_us(o))))
            .collect(),
    );
    let mut body = Value::Map(vec![
        ("version".into(), Value::Str(VERSION.into())),
        ("git".into(), Value::Str(GIT_HASH.into())),
        ("uptime_seconds".into(), Value::F64(m.uptime_seconds())),
        ("queue_depth".into(), (state.queue.len() as u64).to_value()),
        (
            "jobs".into(),
            Value::Map(vec![
                ("queued".into(), by_state[0].to_value()),
                ("running".into(), by_state[1].to_value()),
                ("done".into(), by_state[2].to_value()),
                ("failed".into(), by_state[3].to_value()),
                ("tracked".into(), tracked.to_value()),
            ]),
        ),
        ("counters".into(), counters),
        ("runcache".into(), runcache),
        ("workers".into(), workers),
        ("stages".into(), stages),
        ("e2e_us".into(), e2e),
        (
            "flight_recorder_jobs".into(),
            (state.flight.len() as u64).to_value(),
        ),
    ]);
    if let (Some(ac), Value::Map(map)) = (&state.admission, &mut body) {
        let opts = ac.options();
        let mut a: Vec<(String, Value)> = vec![
            (
                "rate_per_sec".into(),
                opts.rate_per_sec.map(Value::F64).unwrap_or(Value::Null),
            ),
            ("burst".into(), Value::F64(opts.burst)),
            (
                "slo_ms".into(),
                opts.slo_ms.map(|v| v.to_value()).unwrap_or(Value::Null),
            ),
            ("buckets".into(), (ac.bucket_count() as u64).to_value()),
        ];
        if let Some(sig) = ac.slo_signal(&m.queue_wait_us) {
            a.push(("window_p95_us".into(), sig.window_p95_us.to_value()));
            a.push(("window_samples".into(), sig.window_samples.to_value()));
            a.push(("slo_engaged".into(), Value::Bool(sig.engaged)));
        }
        map.push(("admission".into(), Value::Map(a)));
    }
    let agent = state
        .cluster
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let (Some(agent), Value::Map(m)) = (agent, &mut body) {
        m.push(("cluster".into(), agent.status_value()));
    }
    serde_json::to_string(&body).expect("serializes")
}

/// `GET /v1/flight-recorder` (and the crash dump): recent job timings
/// plus the tracer's buffered events, non-destructively.
fn flight_recorder_body(state: &State) -> String {
    let v = flight_dump_value(&state.flight.snapshot(), &state.tracer.snapshot());
    serde_json::to_string(&v).expect("serializes")
}

fn make_handler(state: Arc<State>) -> Handler {
    Arc::new(move |req| {
        let parts: Vec<&str> = req.path.split('/').filter(|p| !p.is_empty()).collect();
        match (req.method.as_str(), parts.as_slice()) {
            ("POST", ["v1", "jobs"]) => {
                let body = match std::str::from_utf8(&req.body) {
                    Ok(b) => b,
                    Err(_) => return json_err(400, "body is not UTF-8"),
                };
                let spec: JobSpec = match serde_json::from_str(body) {
                    Ok(s) => s,
                    Err(e) => return json_err(400, &format!("bad job spec: {e}")),
                };
                let submit_t0 = Instant::now();
                let outcome = submit(&state, spec);
                state.metrics.submit_us.record(elapsed_us(submit_t0));
                match outcome {
                    Ok(outcome) => {
                        let (id, coalesced, cached) = match outcome {
                            Submitted::New(id) => (id, false, false),
                            Submitted::Coalesced(id) => (id, true, false),
                            Submitted::Cached(id) => (id, false, true),
                        };
                        let body = serde_json::to_string(&Value::Map(vec![
                            ("job".into(), id.to_value()),
                            ("coalesced".into(), Value::Bool(coalesced)),
                            ("cached".into(), Value::Bool(cached)),
                        ]))
                        .expect("serializes");
                        HandlerResult::Json(202, body)
                    }
                    Err(reject) => reject_response(&reject),
                }
            }
            ("GET", ["v1", "jobs", id]) => {
                match id.parse::<u64>().ok().and_then(|i| state.job(i)) {
                    Some(job) => HandlerResult::Json(200, job_status_body(&job)),
                    None => json_err(404, "no such job"),
                }
            }
            ("GET", ["v1", "jobs", id, "events"]) => {
                match id.parse::<u64>().ok().and_then(|i| state.job(i)) {
                    Some(job) => HandlerResult::Stream(
                        200,
                        Box::new(EventStream::new(Arc::clone(&job.events))),
                    ),
                    None => json_err(404, "no such job"),
                }
            }
            ("GET", ["metrics"]) => {
                HandlerResult::Typed(200, METRICS_CONTENT_TYPE, metrics_body(&state))
            }
            ("GET", ["v1", "status"]) => HandlerResult::Json(200, status_body(&state)),
            ("GET", ["v1", "flight-recorder"]) => {
                HandlerResult::Json(200, flight_recorder_body(&state))
            }
            ("GET", ["v1", "health"]) => {
                let body = serde_json::to_string(&Value::Map(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("queue_depth".into(), (state.queue.len() as u64).to_value()),
                ]))
                .expect("serializes");
                HandlerResult::Json(200, body)
            }
            ("POST", ["v1", "shutdown"]) => {
                state.request_shutdown();
                HandlerResult::Json(200, "{\"shutting_down\":true}".into())
            }
            ("POST" | "GET", _) => json_err(404, "no such endpoint"),
            _ => json_err(405, "method not allowed"),
        }
    })
}
