//! The daemon: HTTP front end + scheduler + resident worker pool.
//!
//! Data flow: `POST /v1/jobs` resolves the spec, fingerprints it, and
//! either (a) returns a run-cache hit as an immediately-done job, (b)
//! coalesces onto an identical in-flight job, or (c) enqueues a new job
//! in the bounded [`JobQueue`] (full queue => 429 shed). A single
//! scheduler thread pops in priority/fairness order and hands jobs to a
//! long-lived [`WorkerPool`]; each execution is panic-isolated, so an
//! invalid configuration (the simulator validates with asserts) fails
//! that one job while the daemon keeps serving.
//!
//! Every state transition is journaled; on restart, finished jobs are
//! re-materialized from the run cache and unfinished ones are re-queued
//! (see [`crate::journal`]).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use esteem_core::Simulator;
use esteem_harness::runcache;
use esteem_par::WorkerPool;
use esteem_stats::{IntervalObserver, IntervalSample, Scope, StatsReading, StatsSource};
use esteem_trace::{EventKind, TraceEvent, TraceFilter, Tracer};
use serde::{Serialize, Value};

use crate::http::{Handler, HandlerResult, HttpCounters, HttpServer};
use crate::job::{EventStream, Job, JobSpec, JobState};
use crate::journal::{recover, Journal, RecoveredOutcome};
use crate::queue::{JobQueue, PushError, QueuedJob};

/// Daemon configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Resident worker threads executing simulations.
    pub workers: usize,
    /// Queue bound: submissions beyond it are shed with 429.
    pub queue_capacity: usize,
    /// Append-only journal path (`None` disables crash recovery).
    pub journal_path: Option<PathBuf>,
    /// Start with the scheduler paused (tests and drain-and-inspect
    /// operation; resume with [`Daemon::resume`]).
    pub start_paused: bool,
    /// How long shutdown waits for open connections to finish.
    pub drain_timeout: Duration,
    /// Ring-buffer tracer capacity; 0 disables tracing.
    pub trace_events: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            journal_path: None,
            start_paused: false,
            drain_timeout: Duration::from_secs(10),
            trace_events: 1 << 16,
        }
    }
}

/// Daemon-level counters, exported under `serve/` in `/metrics`.
#[derive(Debug, Default)]
pub struct ServeCounters {
    pub submitted: AtomicU64,
    pub coalesced: AtomicU64,
    /// Submissions answered straight from the run cache.
    pub cached: AtomicU64,
    /// Submissions shed because the queue was full.
    pub shed: AtomicU64,
    /// Submissions rejected at resolve time (bad spec).
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Jobs reconstructed from the journal at startup.
    pub recovered: AtomicU64,
    /// Corrupt/torn journal lines skipped during recovery.
    pub journal_skipped: AtomicU64,
}

impl StatsSource for ServeCounters {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("jobs_submitted", self.submitted.load(Ordering::Relaxed));
        out.counter("jobs_coalesced", self.coalesced.load(Ordering::Relaxed));
        out.counter("jobs_cached", self.cached.load(Ordering::Relaxed));
        out.counter("jobs_shed", self.shed.load(Ordering::Relaxed));
        out.counter("jobs_rejected", self.rejected.load(Ordering::Relaxed));
        out.counter("jobs_completed", self.completed.load(Ordering::Relaxed));
        out.counter("jobs_failed", self.failed.load(Ordering::Relaxed));
        out.counter("jobs_recovered", self.recovered.load(Ordering::Relaxed));
        out.counter(
            "journal_skipped_lines",
            self.journal_skipped.load(Ordering::Relaxed),
        );
    }
}

/// Two-state gate for the scheduler (pause/resume).
#[derive(Debug, Default)]
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn set(&self, paused: bool) {
        *self.paused.lock().unwrap_or_else(|e| e.into_inner()) = paused;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut paused = self.paused.lock().unwrap_or_else(|e| e.into_inner());
        while *paused {
            paused = self.cv.wait(paused).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct State {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    /// fingerprint -> primary job id, for every job not yet terminal.
    inflight: Mutex<HashMap<u64, u64>>,
    queue: JobQueue,
    journal: Journal,
    counters: ServeCounters,
    tracer: Tracer,
    gate: Gate,
    /// Signaled by `POST /v1/shutdown`.
    shutdown: (Mutex<bool>, Condvar),
    /// Filled in once the HTTP server is bound (the server owns them).
    http_counters: Mutex<Option<Arc<HttpCounters>>>,
}

impl State {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    fn add_job(&self, job: Arc<Job>) {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job.id, job);
    }

    fn remove_job(&self, id: u64) {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn request_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }

    fn wait_shutdown(&self) {
        let (lock, cv) = &self.shutdown;
        let mut flag = lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = cv.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Streams interval samples into the job's event buffer as JSONL.
struct EventSink {
    events: Arc<crate::job::JobEvents>,
}

impl IntervalObserver for EventSink {
    fn on_interval(&mut self, sample: &IntervalSample) {
        self.events
            .push(serde_json::to_string(sample).expect("sample serializes"));
    }
}

/// A running daemon. Dropping it without [`Daemon::wait`] aborts
/// ungracefully; the intended lifecycle is `spawn` -> (work) -> HTTP
/// shutdown or [`Daemon::shutdown`] -> `wait`.
pub struct Daemon {
    addr: SocketAddr,
    state: Arc<State>,
    http: Option<std::thread::JoinHandle<bool>>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    http_handle: crate::http::ServerHandle,
}

impl Daemon {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pauses the scheduler: queued jobs stay queued. Running jobs are
    /// unaffected.
    pub fn pause(&self) {
        self.state.gate.set(true);
    }

    pub fn resume(&self) {
        self.state.gate.set(false);
    }

    /// Programmatic equivalent of `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Counter snapshot (tests; the HTTP view is `/metrics`).
    pub fn counters(&self) -> &ServeCounters {
        &self.state.counters
    }

    /// Drains the daemon's tracer ring (queue-wait/cache/run spans and
    /// run-cache hit/miss events).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.state.tracer.drain()
    }

    /// Blocks until shutdown is requested, then drains: the queue
    /// closes, every already-accepted job still runs to completion, the
    /// worker pool joins, and the HTTP listener stops. Returns `true`
    /// when all connections drained within the timeout.
    pub fn wait(mut self) -> bool {
        self.state.wait_shutdown();
        // No new pushes; scheduler drains the queue then exits.
        self.state.queue.close();
        // Unpause: a paused scheduler must still drain on shutdown.
        self.state.gate.set(false);
        if let Some(s) = self.scheduler.take() {
            let _ = s.join();
        }
        // The scheduler joined the pool before exiting, so every job is
        // now terminal; close any event streams of jobs that never ran.
        for job in self
            .state
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            job.events.close();
        }
        self.http_handle.stop();
        match self.http.take() {
            Some(h) => h.join().unwrap_or(false),
            None => true,
        }
    }
}

/// Binds, recovers the journal, and starts the scheduler + HTTP threads.
pub fn spawn(opts: ServerOptions) -> std::io::Result<Daemon> {
    let tracer = if opts.trace_events > 0 {
        Tracer::ring(opts.trace_events, TraceFilter::all())
    } else {
        Tracer::off()
    };
    let journal = match &opts.journal_path {
        Some(p) => Journal::open(p)?,
        None => Journal::none(),
    };
    let state = Arc::new(State {
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(0),
        inflight: Mutex::new(HashMap::new()),
        queue: JobQueue::new(opts.queue_capacity),
        journal,
        counters: ServeCounters::default(),
        tracer,
        gate: Gate::default(),
        shutdown: (Mutex::new(false), Condvar::new()),
        http_counters: Mutex::new(None),
    });
    state.gate.set(opts.start_paused);

    if let Some(path) = &opts.journal_path {
        recover_jobs(&state, path)?;
    }

    let pool = WorkerPool::new(opts.workers, opts.workers.max(1) * 2);
    let sched_state = Arc::clone(&state);
    let scheduler = std::thread::Builder::new()
        .name("esteem-serve-sched".into())
        .spawn(move || scheduler_loop(&sched_state, pool))
        .expect("spawn scheduler");

    let handler = make_handler(Arc::clone(&state));
    let server = HttpServer::bind(&opts.addr, handler)?;
    let addr = server.local_addr();
    let http_handle = server.handle();
    *state
        .http_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&server.counters));
    let drain = opts.drain_timeout;
    let http = std::thread::Builder::new()
        .name("esteem-serve-http".into())
        .spawn(move || server.serve(drain))
        .expect("spawn http thread");

    Ok(Daemon {
        addr,
        state,
        http: Some(http),
        scheduler: Some(scheduler),
        http_handle,
    })
}

fn recover_jobs(state: &Arc<State>, path: &std::path::Path) -> std::io::Result<()> {
    let rec = recover(path)?;
    if rec.skipped_lines > 0 {
        eprintln!(
            "esteem-serve: journal {}: skipped {} corrupt line(s) during recovery",
            path.display(),
            rec.skipped_lines
        );
        state
            .counters
            .journal_skipped
            .fetch_add(rec.skipped_lines, Ordering::Relaxed);
    }
    state.next_id.store(rec.max_id, Ordering::Relaxed);
    for r in rec.jobs {
        let job = Arc::new(Job::new(r.id, r.spec, r.fingerprint));
        match r.outcome {
            RecoveredOutcome::Done => match runcache::lookup(r.fingerprint) {
                Some(report) => {
                    job.set_state(JobState::Done(Box::new(report)));
                    job.events.close();
                }
                // Result evicted from the cache: re-run (deterministic,
                // so the client sees the identical report).
                None => requeue_recovered(state, &job),
            },
            RecoveredOutcome::Failed(err) => {
                job.set_state(JobState::Failed(err));
                job.events.close();
            }
            RecoveredOutcome::Unfinished => requeue_recovered(state, &job),
        }
        state.counters.recovered.fetch_add(1, Ordering::Relaxed);
        state.add_job(job);
    }
    Ok(())
}

fn requeue_recovered(state: &Arc<State>, job: &Arc<Job>) {
    job.set_state(JobState::Queued);
    state
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(job.fingerprint, job.id);
    let _ = state.queue.push_recovered(QueuedJob {
        job_id: job.id,
        priority: job.spec.priority,
        client: job.spec.client.clone(),
    });
}

fn scheduler_loop(state: &Arc<State>, pool: WorkerPool) {
    loop {
        state.gate.wait_open();
        let Some(queued) = state.queue.pop_blocking() else {
            break;
        };
        let Some(job) = state.job(queued.job_id) else {
            continue;
        };
        state.journal.start(job.id);
        job.set_state(JobState::Running);
        emit_queue_wait(state, &job);
        let exec_state = Arc::clone(state);
        // `submit` blocks when the pool's feed queue is full — that is
        // fine here: backpressure belongs at the bounded JobQueue, and
        // the scheduler blocking just leaves jobs queued there.
        let _ = pool.submit(Box::new(move || execute(&exec_state, &job)));
    }
    // Queue closed and drained: wait for in-flight executions, then
    // release the workers.
    pool.shutdown();
}

/// Records the queue-wait span for a job that just left the queue.
fn emit_queue_wait(state: &Arc<State>, job: &Arc<Job>) {
    let t = &state.tracer;
    if !t.enabled(EventKind::Span) {
        return;
    }
    let end_us = t.elapsed_us();
    let start_us = f64::from_bits(job.queued_at_us.load(Ordering::Relaxed));
    t.emit(EventKind::Span, || TraceEvent::Span {
        name: format!("job{}.queue_wait", job.id),
        start_us,
        dur_us: (end_us - start_us).max(0.0),
    });
}

/// Runs one job on a worker thread with panic isolation.
fn execute(state: &Arc<State>, job: &Arc<Job>) {
    let fp = job.fingerprint;
    let result = catch_unwind(AssertUnwindSafe(|| {
        let cached = {
            let _span = state.tracer.span("job.cache_lookup");
            runcache::lookup(fp)
        };
        if let Some(report) = cached {
            return report;
        }
        let _span = state.tracer.span("job.run");
        let resolved = job
            .spec
            .resolve()
            .expect("spec resolved at submit; workloads/techniques are static");
        // Thread count is a pure throughput knob (reports are
        // byte-identical), so it is safe to apply here even though it is
        // not part of the fingerprint the cache lookup above used.
        let sim = Simulator::new(resolved.cfg, &resolved.profiles, &resolved.label)
            .with_threads(job.spec.threads.max(1))
            .with_observer(Box::new(EventSink {
                events: Arc::clone(&job.events),
            }));
        let report = sim.run();
        runcache::insert(fp, &report);
        report
    }));
    match result {
        Ok(report) => {
            state.journal.done(job.id);
            state.counters.completed.fetch_add(1, Ordering::Relaxed);
            job.set_state(JobState::Done(Box::new(report)));
        }
        Err(payload) => {
            let msg = esteem_par::panic_message(payload.as_ref());
            state.journal.fail(job.id, &msg);
            state.counters.failed.fetch_add(1, Ordering::Relaxed);
            job.set_state(JobState::Failed(msg));
        }
    }
    state
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&fp);
    job.events.close();
}

/// Submit outcome, for the response body.
enum Submitted {
    New(u64),
    Coalesced(u64),
    Cached(u64),
}

fn submit(state: &Arc<State>, spec: JobSpec) -> Result<Submitted, (u16, String)> {
    let resolved = spec.resolve().map_err(|e| {
        state.counters.rejected.fetch_add(1, Ordering::Relaxed);
        (400, e)
    })?;
    let fp = resolved.fingerprint;

    // Coalesce + enqueue under the inflight lock, so a duplicate either
    // sees the primary (and coalesces) or races cleanly to be primary.
    let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&primary) = inflight.get(&fp) {
        if let Some(job) = state.job(primary) {
            if !job.state().is_terminal() {
                job.coalesced.fetch_add(1, Ordering::Relaxed);
                state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                state.journal.coalesce(primary);
                return Ok(Submitted::Coalesced(primary));
            }
        }
        inflight.remove(&fp);
    }

    // Run-cache hit: the job is born done.
    if let Some(report) = runcache::lookup(fp) {
        drop(inflight);
        let id = state.alloc_id();
        let job = Arc::new(Job::new(id, spec.clone(), fp));
        state.journal.submit(id, fp, &spec);
        state.journal.done(id);
        job.set_state(JobState::Done(Box::new(report)));
        job.events.close();
        state.counters.submitted.fetch_add(1, Ordering::Relaxed);
        state.counters.cached.fetch_add(1, Ordering::Relaxed);
        state.counters.completed.fetch_add(1, Ordering::Relaxed);
        state.add_job(job);
        return Ok(Submitted::Cached(id));
    }

    let id = state.alloc_id();
    let job = Arc::new(Job::new(id, spec.clone(), fp));
    job.queued_at_us
        .store(state.tracer.elapsed_us().to_bits(), Ordering::Relaxed);
    // Publish the job before enqueueing its id: the scheduler may pop
    // the entry the instant `push` releases the queue lock, and it must
    // find the job in the table.
    state.add_job(Arc::clone(&job));
    match state.queue.push(QueuedJob {
        job_id: id,
        priority: spec.priority,
        client: spec.client.clone(),
    }) {
        Ok(()) => {
            inflight.insert(fp, id);
            state.journal.submit(id, fp, &spec);
            state.counters.submitted.fetch_add(1, Ordering::Relaxed);
            Ok(Submitted::New(id))
        }
        Err(PushError::Full) => {
            state.remove_job(id);
            state.counters.shed.fetch_add(1, Ordering::Relaxed);
            Err((429, "queue full".into()))
        }
        Err(PushError::Closed) => {
            state.remove_job(id);
            Err((503, "daemon is shutting down".into()))
        }
    }
}

fn json_err(status: u16, msg: &str) -> HandlerResult {
    HandlerResult::Json(
        status,
        serde_json::to_string(&Value::Map(vec![("error".into(), Value::Str(msg.into()))]))
            .expect("serializes"),
    )
}

fn job_status_body(job: &Job) -> String {
    let state = job.state();
    let mut m: Vec<(String, Value)> = vec![
        ("job".into(), job.id.to_value()),
        ("state".into(), Value::Str(state.name().into())),
        ("workload".into(), Value::Str(job.spec.workload.clone())),
        (
            "fingerprint".into(),
            Value::Str(format!("{:016x}", job.fingerprint)),
        ),
        (
            "coalesced".into(),
            job.coalesced.load(Ordering::Relaxed).to_value(),
        ),
    ];
    match state {
        JobState::Done(report) => m.push(("result".into(), report.to_value())),
        JobState::Failed(err) => m.push(("error".into(), Value::Str(err))),
        _ => {}
    }
    serde_json::to_string(&Value::Map(m)).expect("serializes")
}

fn metrics_body(state: &State) -> String {
    let mut r = StatsReading::new();
    r.register("serve", &state.counters);
    r.scope("serve", |s| {
        s.gauge("queue_depth", state.queue.len() as f64);
        s.gauge(
            "jobs_tracked",
            state.jobs.lock().unwrap_or_else(|e| e.into_inner()).len() as f64,
        );
    });
    let cs = runcache::cache_stats();
    r.scope("runcache", |s| {
        s.counter("hits", cs.hits);
        s.counter("misses", cs.misses);
        s.counter("disk_evictions", cs.disk_evictions);
        s.gauge("mem_entries", cs.mem_entries as f64);
    });
    let hc = state
        .http_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(hc) = hc {
        r.scope("http", |s| {
            s.counter("accepted", hc.accepted.load(Ordering::Relaxed));
            s.counter("requests", hc.requests.load(Ordering::Relaxed));
            s.counter("responses_2xx", hc.responses_2xx.load(Ordering::Relaxed));
            s.counter("responses_4xx", hc.responses_4xx.load(Ordering::Relaxed));
            s.counter("responses_5xx", hc.responses_5xx.load(Ordering::Relaxed));
            s.counter("parse_errors", hc.parse_errors.load(Ordering::Relaxed));
        });
    }
    r.render_text()
}

fn make_handler(state: Arc<State>) -> Handler {
    Arc::new(move |req| {
        let parts: Vec<&str> = req.path.split('/').filter(|p| !p.is_empty()).collect();
        match (req.method.as_str(), parts.as_slice()) {
            ("POST", ["v1", "jobs"]) => {
                let body = match std::str::from_utf8(&req.body) {
                    Ok(b) => b,
                    Err(_) => return json_err(400, "body is not UTF-8"),
                };
                let spec: JobSpec = match serde_json::from_str(body) {
                    Ok(s) => s,
                    Err(e) => return json_err(400, &format!("bad job spec: {e}")),
                };
                match submit(&state, spec) {
                    Ok(outcome) => {
                        let (id, coalesced, cached) = match outcome {
                            Submitted::New(id) => (id, false, false),
                            Submitted::Coalesced(id) => (id, true, false),
                            Submitted::Cached(id) => (id, false, true),
                        };
                        let body = serde_json::to_string(&Value::Map(vec![
                            ("job".into(), id.to_value()),
                            ("coalesced".into(), Value::Bool(coalesced)),
                            ("cached".into(), Value::Bool(cached)),
                        ]))
                        .expect("serializes");
                        HandlerResult::Json(202, body)
                    }
                    Err((status, msg)) => json_err(status, &msg),
                }
            }
            ("GET", ["v1", "jobs", id]) => {
                match id.parse::<u64>().ok().and_then(|i| state.job(i)) {
                    Some(job) => HandlerResult::Json(200, job_status_body(&job)),
                    None => json_err(404, "no such job"),
                }
            }
            ("GET", ["v1", "jobs", id, "events"]) => {
                match id.parse::<u64>().ok().and_then(|i| state.job(i)) {
                    Some(job) => HandlerResult::Stream(
                        200,
                        Box::new(EventStream::new(Arc::clone(&job.events))),
                    ),
                    None => json_err(404, "no such job"),
                }
            }
            ("GET", ["metrics"]) => HandlerResult::Text(200, metrics_body(&state)),
            ("GET", ["v1", "health"]) => {
                let body = serde_json::to_string(&Value::Map(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("queue_depth".into(), (state.queue.len() as u64).to_value()),
                ]))
                .expect("serializes");
                HandlerResult::Json(200, body)
            }
            ("POST", ["v1", "shutdown"]) => {
                state.request_shutdown();
                HandlerResult::Json(200, "{\"shutting_down\":true}".into())
            }
            ("POST" | "GET", _) => json_err(404, "no such endpoint"),
            _ => json_err(405, "method not allowed"),
        }
    })
}
