//! The job-server daemon.
//!
//! ```text
//! esteem-serve [options]
//!   --addr <host:port>      bind address (default 127.0.0.1:7117;
//!                           port 0 picks an ephemeral port, printed
//!                           on stdout as "listening on <addr>")
//!   --workers <n>           resident simulation workers (default 2)
//!   --queue-capacity <n>    bound before 429 shed (default 64)
//!   --journal <file>        append-only job journal; enables crash
//!                           recovery on restart
//!   --flight-dump <file>    write a flight-recorder dump (recent job
//!                           stage timings + trace ring) whenever a
//!                           job panics
//!   --flight-jobs <n>       flight-recorder depth (default 256)
//! ```
//!
//! The daemon exits after `POST /v1/shutdown`: the queue closes, every
//! accepted job runs to completion, workers join, and the listener
//! stops.

use std::io::Write;
use std::process::ExitCode;

use esteem_serve::ServerOptions;

const HELP: &str = "usage: esteem-serve [--addr host:port] [--workers n] [--queue-capacity n] \
     [--journal file] [--flight-dump file] [--flight-jobs n]";

fn parse() -> Result<ServerOptions, String> {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:7117".into(),
        ..ServerOptions::default()
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = next(&mut it, "--addr")?,
            "--workers" => {
                opts.workers = next(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--queue-capacity" => {
                opts.queue_capacity = next(&mut it, "--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
                if opts.queue_capacity == 0 {
                    return Err("--queue-capacity must be >= 1".into());
                }
            }
            "--journal" => opts.journal_path = Some(next(&mut it, "--journal")?.into()),
            "--flight-dump" => opts.flight_dump = Some(next(&mut it, "--flight-dump")?.into()),
            "--flight-jobs" => {
                opts.flight_recorder_jobs = next(&mut it, "--flight-jobs")?
                    .parse()
                    .map_err(|e| format!("--flight-jobs: {e}"))?;
                if opts.flight_recorder_jobs == 0 {
                    return Err("--flight-jobs must be >= 1".into());
                }
            }
            "-h" | "--help" => return Err(HELP.into()),
            other => return Err(format!("unknown flag {other}\n{HELP}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match esteem_serve::spawn(opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("starting daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts (and the smoke test) parse this line for the ephemeral
    // port, so flush it before blocking.
    println!("listening on {}", daemon.addr());
    let _ = std::io::stdout().flush();
    let drained = daemon.wait();
    if !drained {
        eprintln!("warning: some connections did not drain before the timeout");
    }
    ExitCode::SUCCESS
}
