//! The job-server daemon.
//!
//! ```text
//! esteem-serve [options]
//!   --addr <host:port>      bind address (default 127.0.0.1:7117;
//!                           port 0 picks an ephemeral port, printed
//!                           on stdout as "listening on <addr>")
//!   --workers <n>           resident simulation workers (default 2)
//!   --queue-capacity <n>    bound before 429 shed (default 64)
//!   --journal <file>        append-only job journal; enables crash
//!                           recovery on restart
//!   --flight-dump <file>    write a flight-recorder dump (recent job
//!                           stage timings + trace ring) whenever a
//!                           job panics
//!   --flight-jobs <n>       flight-recorder depth (default 256)
//!   --compact-journal       rewrite --journal keeping only terminal
//!                           job records, print stats, and exit (the
//!                           daemon does not start)
//!   --coordinator <addr>    join a cluster: register/heartbeat with
//!                           this esteem-coord coordinator
//!   --node-id <name>        stable cluster node name
//!                           (default worker-<pid>)
//!   --advertise <addr>      address other nodes dial for this worker
//!                           (default: the bound address)
//!   --heartbeat-ms <ms>     cluster heartbeat interval (default 1000)
//!   --rate-limit <rps>      per-client token-bucket admission rate
//!                           (default: no rate limit)
//!   --burst <n>             token-bucket burst size (default 10)
//!   --slo-ms <ms>           shed all clients while windowed queue-wait
//!                           p95 exceeds this (default: no SLO shedding)
//!   --aging <pops>          queue priority aging: +1 effective priority
//!                           level per this many pops waited (default 0
//!                           = off)
//! ```
//!
//! The daemon exits after `POST /v1/shutdown`: the queue closes, every
//! accepted job runs to completion, workers join, and the listener
//! stops.

use std::io::Write;
use std::process::ExitCode;

use esteem_serve::ServerOptions;

const HELP: &str = "usage: esteem-serve [--addr host:port] [--workers n] [--queue-capacity n] \
     [--journal file] [--flight-dump file] [--flight-jobs n] [--compact-journal] \
     [--coordinator addr] [--node-id name] [--advertise addr] [--heartbeat-ms ms] \
     [--rate-limit rps] [--burst n] [--slo-ms ms] [--aging pops]";

fn parse() -> Result<(ServerOptions, bool), String> {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:7117".into(),
        ..ServerOptions::default()
    };
    let mut compact = false;
    let mut coordinator: Option<String> = None;
    let mut node_id: Option<String> = None;
    let mut advertise: Option<String> = None;
    let mut heartbeat_ms: u64 = 1000;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compact-journal" => compact = true,
            "--addr" => opts.addr = next(&mut it, "--addr")?,
            "--workers" => {
                opts.workers = next(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--queue-capacity" => {
                opts.queue_capacity = next(&mut it, "--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
                if opts.queue_capacity == 0 {
                    return Err("--queue-capacity must be >= 1".into());
                }
            }
            "--journal" => opts.journal_path = Some(next(&mut it, "--journal")?.into()),
            "--flight-dump" => opts.flight_dump = Some(next(&mut it, "--flight-dump")?.into()),
            "--flight-jobs" => {
                opts.flight_recorder_jobs = next(&mut it, "--flight-jobs")?
                    .parse()
                    .map_err(|e| format!("--flight-jobs: {e}"))?;
                if opts.flight_recorder_jobs == 0 {
                    return Err("--flight-jobs must be >= 1".into());
                }
            }
            "--coordinator" => coordinator = Some(next(&mut it, "--coordinator")?),
            "--node-id" => node_id = Some(next(&mut it, "--node-id")?),
            "--advertise" => advertise = Some(next(&mut it, "--advertise")?),
            "--heartbeat-ms" => {
                heartbeat_ms = next(&mut it, "--heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                if heartbeat_ms == 0 {
                    return Err("--heartbeat-ms must be >= 1".into());
                }
            }
            "--rate-limit" => {
                let rate: f64 = next(&mut it, "--rate-limit")?
                    .parse()
                    .map_err(|e| format!("--rate-limit: {e}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("--rate-limit must be > 0".into());
                }
                opts.admission.rate_per_sec = Some(rate);
            }
            "--burst" => {
                let burst: f64 = next(&mut it, "--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?;
                if !burst.is_finite() || burst < 1.0 {
                    return Err("--burst must be >= 1".into());
                }
                opts.admission.burst = burst;
            }
            "--slo-ms" => {
                let slo: u64 = next(&mut it, "--slo-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-ms: {e}"))?;
                if slo == 0 {
                    return Err("--slo-ms must be >= 1".into());
                }
                opts.admission.slo_ms = Some(slo);
            }
            "--aging" => {
                opts.aging_pops = next(&mut it, "--aging")?
                    .parse()
                    .map_err(|e| format!("--aging: {e}"))?;
            }
            "-h" | "--help" => return Err(HELP.into()),
            other => return Err(format!("unknown flag {other}\n{HELP}")),
        }
    }
    if let Some(coordinator) = coordinator {
        let node_id = node_id.unwrap_or_else(|| format!("worker-{}", std::process::id()));
        let mut cfg = esteem_serve::ClusterConfig::new(coordinator, node_id);
        cfg.advertise = advertise;
        cfg.heartbeat = std::time::Duration::from_millis(heartbeat_ms);
        opts.cluster = Some(cfg);
    } else if node_id.is_some() || advertise.is_some() {
        return Err("--node-id/--advertise need --coordinator".into());
    }
    Ok((opts, compact))
}

fn main() -> ExitCode {
    let (opts, compact) = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if compact {
        let Some(path) = opts.journal_path.as_deref() else {
            eprintln!("--compact-journal needs --journal <file>");
            return ExitCode::FAILURE;
        };
        return match esteem_serve::journal::compact(path) {
            Ok(s) => {
                println!(
                    "compacted {}: {} jobs ({} terminal, {} unfinished), \
                     {} lines -> {} ({} corrupt dropped)",
                    path.display(),
                    s.jobs,
                    s.terminal,
                    s.unfinished,
                    s.lines_before,
                    s.lines_after,
                    s.skipped
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("compacting {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    let daemon = match esteem_serve::spawn(opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("starting daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts (and the smoke test) parse this line for the ephemeral
    // port, so flush it before blocking.
    println!("listening on {}", daemon.addr());
    let _ = std::io::stdout().flush();
    let drained = daemon.wait();
    if !drained {
        eprintln!("warning: some connections did not drain before the timeout");
    }
    ExitCode::SUCCESS
}
