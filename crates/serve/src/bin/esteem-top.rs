//! `esteem-top`: a live terminal dashboard for a running daemon.
//!
//! ```text
//! esteem-top [addr] [--interval secs] [--once]
//!   addr              daemon address (default 127.0.0.1:7117)
//!   --interval <s>    refresh period in seconds (default 2)
//!   --once            print one snapshot and exit (CI / non-TTY)
//! ```
//!
//! Polls `GET /v1/status` and renders queue depth, job states, run-cache
//! hit rate, per-worker utilization, and per-stage latency percentiles
//! with histogram sparklines. Std-only: plain ANSI escapes, no TUI
//! dependency — `--once` emits the same snapshot as plain text, which is
//! what the CI smoke test asserts against.

use std::process::ExitCode;
use std::time::Duration;

use esteem_serve::client;
use serde::{map_get, Value};

const HELP: &str = "usage: esteem-top [addr] [--interval secs] [--once]";

struct Args {
    addr: String,
    interval: Duration,
    once: bool,
}

fn parse() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7117".into(),
        interval: Duration::from_secs(2),
        once: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => {
                let v: f64 = it
                    .next()
                    .ok_or("--interval needs a value")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err("--interval must be > 0".into());
                }
                args.interval = Duration::from_secs_f64(v);
            }
            "--once" => args.once = true,
            "-h" | "--help" => return Err(HELP.into()),
            other if !other.starts_with('-') => args.addr = other.to_owned(),
            other => return Err(format!("unknown flag {other}\n{HELP}")),
        }
    }
    Ok(args)
}

// --- JSON helpers over the vendored Value tree --------------------------

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_map().and_then(|m| map_get(m, key).ok())
}

fn get_u64(v: &Value, key: &str) -> u64 {
    get(v, key).and_then(as_u64).unwrap_or(0)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        Value::F64(f) => Some(*f as u64),
        _ => None,
    }
}

fn get_f64(v: &Value, key: &str) -> f64 {
    match get(v, key) {
        Some(Value::F64(f)) => *f,
        Some(Value::U64(n)) => *n as f64,
        Some(Value::I64(n)) => *n as f64,
        _ => 0.0,
    }
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    get(v, key).and_then(|s| s.as_str()).unwrap_or("?")
}

// --- rendering ----------------------------------------------------------

/// Unicode block sparkline of the stage's compact bucket cells.
fn sparkline(cells: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = cells.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return String::new();
    }
    cells
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                // Map 1..=max onto the 8 block heights.
                BLOCKS[((c * 7).div_ceil(max)).min(7) as usize]
            }
        })
        .collect()
}

fn utilization_bar(frac: f64, width: usize) -> String {
    let filled = ((frac * width as f64).round() as usize).min(width);
    format!(
        "{}{} {:3.0}%",
        "#".repeat(filled),
        "-".repeat(width - filled),
        frac * 100.0
    )
}

/// One row of the stage-latency table from a `/v1/status` stage object.
fn stage_row(out: &mut String, label: &str, stage: &Value) {
    let count = get_u64(stage, "count");
    let cells: Vec<u64> = get(stage, "cells")
        .and_then(|v| v.as_seq())
        .map(|s| s.iter().filter_map(as_u64).collect())
        .unwrap_or_default();
    out.push_str(&format!(
        "  {label:<14} {count:>8} {:>9} {:>9} {:>9} {:>9}  {}\n",
        get_u64(stage, "p50_us"),
        get_u64(stage, "p95_us"),
        get_u64(stage, "p99_us"),
        get_u64(stage, "max_us"),
        sparkline(&cells),
    ));
}

/// Coordinator dashboard: one pane per worker node plus sweep progress
/// and cluster counters, rendered from `esteem-coord`'s `/v1/status`.
fn render_coordinator(addr: &str, status: &Value) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "esteem-top — {addr} · coordinator v{}\n",
        get_str(status, "version"),
    ));
    let jobs = get(status, "jobs").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "jobs    {} queued · {} running · {} done · {} failed · {} unassigned\n",
        get_u64(&jobs, "queued"),
        get_u64(&jobs, "running"),
        get_u64(&jobs, "done"),
        get_u64(&jobs, "failed"),
        get_u64(&jobs, "unassigned"),
    ));
    let c = get(status, "counters").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "fabric  {} dispatched · {} stolen · {} re-dispatched · {} worker-cache hits · {} node failures\n",
        get_u64(&c, "jobs_dispatched"),
        get_u64(&c, "jobs_stolen"),
        get_u64(&c, "jobs_redispatched"),
        get_u64(&c, "jobs_cached_on_worker"),
        get_u64(&c, "node_failures"),
    ));
    let workers = get(status, "workers")
        .and_then(|w| w.as_seq())
        .map(|s| s.to_vec())
        .unwrap_or_default();
    out.push_str(&format!(
        "\nworkers ({})\n  {:<12} {:<21} {:>5} {:>8} {:>8} {:>6} {:>10} {:>9}\n",
        workers.len(),
        "node",
        "addr",
        "state",
        "pending",
        "inflight",
        "done",
        "run p95 µs",
        "seen ms"
    ));
    for w in &workers {
        let state = if get(w, "alive") == Some(&Value::Bool(false)) {
            "dead"
        } else if get(w, "draining") == Some(&Value::Bool(true)) {
            "drain"
        } else {
            "up"
        };
        out.push_str(&format!(
            "  {:<12} {:<21} {:>5} {:>8} {:>8} {:>6} {:>10.0} {:>9}\n",
            get_str(w, "node"),
            get_str(w, "addr"),
            state,
            get_u64(w, "pending"),
            get_u64(w, "inflight"),
            get_u64(w, "jobs_done"),
            get_f64(w, "run_p95_us"),
            get_u64(w, "last_seen_ms"),
        ));
    }
    let sweeps = get(status, "sweeps")
        .and_then(|s| s.as_seq())
        .map(|s| s.to_vec())
        .unwrap_or_default();
    if !sweeps.is_empty() {
        out.push_str("\nsweeps\n");
        for s in &sweeps {
            let total = get_u64(s, "total");
            let done = get_u64(s, "done");
            let failed = get_u64(s, "failed");
            let frac = if total > 0 {
                done as f64 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  #{:<4} {} {done}/{total} done{}\n",
                get_u64(s, "sweep"),
                utilization_bar(frac, 24),
                if failed > 0 {
                    format!(" · {failed} FAILED")
                } else {
                    String::new()
                },
            ));
        }
    }
    out
}

fn render(addr: &str, status: &Value) -> String {
    if get_str(status, "cluster_role") == "coordinator" {
        return render_coordinator(addr, status);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "esteem-top — {addr} · v{} (git {}) · up {:.0}s\n",
        get_str(status, "version"),
        get_str(status, "git"),
        get_f64(status, "uptime_seconds"),
    ));
    let jobs = get(status, "jobs").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "jobs    {} queued · {} running · {} done · {} failed    queue depth {}\n",
        get_u64(&jobs, "queued"),
        get_u64(&jobs, "running"),
        get_u64(&jobs, "done"),
        get_u64(&jobs, "failed"),
        get_u64(status, "queue_depth"),
    ));
    let rc = get(status, "runcache").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "cache   {} hits · {} misses · {:.1}% hit rate    flight recorder {} jobs\n",
        get_u64(&rc, "hits"),
        get_u64(&rc, "misses"),
        get_f64(&rc, "hit_rate") * 100.0,
        get_u64(status, "flight_recorder_jobs"),
    ));
    let workers = get(status, "workers").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "workers {} · mean {:.0}% busy · {} active · {} pool-queued\n",
        get_u64(&workers, "count"),
        get_f64(&workers, "utilization") * 100.0,
        get_u64(&workers, "active"),
        get_u64(&workers, "pool_queue"),
    ));
    if let Some(per) = get(&workers, "per_worker").and_then(|v| v.as_seq()) {
        for (i, w) in per.iter().enumerate() {
            let frac = match w {
                Value::F64(f) => *f,
                _ => 0.0,
            };
            out.push_str(&format!("  [{i:>2}] {}\n", utilization_bar(frac, 24)));
        }
    }
    // Cluster membership line (only present on daemons joined to a
    // coordinator via --coordinator).
    if let Some(cluster) = get(status, "cluster") {
        out.push_str(&format!(
            "cluster {} @ {} -> {} · {} · {} beats ({} failed)\n",
            get_str(cluster, "node_id"),
            get_str(cluster, "advertise"),
            get_str(cluster, "coordinator"),
            if get(cluster, "registered") == Some(&Value::Bool(true)) {
                "registered"
            } else {
                "UNREGISTERED"
            },
            get_u64(cluster, "heartbeats"),
            get_u64(cluster, "heartbeat_failures"),
        ));
    }
    out.push_str(&format!(
        "\n{:<16} {:>8} {:>9} {:>9} {:>9} {:>9}  distribution\n",
        "stage (µs)", "count", "p50", "p95", "p99", "max"
    ));
    let stages = get(status, "stages").cloned().unwrap_or(Value::Null);
    for name in [
        "submit_us",
        "queue_wait_us",
        "cache_lookup_us",
        "run_us",
        "serialize_us",
    ] {
        if let Some(stage) = get(&stages, name) {
            stage_row(&mut out, name.trim_end_matches("_us"), stage);
        }
    }
    let e2e = get(status, "e2e_us").cloned().unwrap_or(Value::Null);
    for outcome in ["done", "cached", "failed"] {
        if let Some(stage) = get(&e2e, outcome) {
            stage_row(&mut out, &format!("e2e {outcome}"), stage);
        }
    }
    out
}

fn fetch_status(addr: &str) -> Result<Value, String> {
    let (status, body) = client::request(addr, "GET", "/v1/status", None)?;
    if status != 200 {
        return Err(format!("GET /v1/status -> {status}: {body}"));
    }
    serde_json::from_str(&body).map_err(|e| format!("bad status body: {e}"))
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.once {
        return match fetch_status(&args.addr) {
            Ok(status) => {
                print!("{}", render(&args.addr, &status));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("esteem-top: {e}");
                ExitCode::FAILURE
            }
        };
    }
    loop {
        match fetch_status(&args.addr) {
            Ok(status) => {
                // Clear screen + home, then one frame.
                print!("\x1b[2J\x1b[H{}", render(&args.addr, &status));
                println!(
                    "\n(refresh {:.1}s · ctrl-c to quit)",
                    args.interval.as_secs_f64()
                );
            }
            Err(e) => {
                print!("\x1b[2J\x1b[H");
                println!(
                    "esteem-top: {e}\nretrying in {:.1}s…",
                    args.interval.as_secs_f64()
                );
            }
        }
        std::thread::sleep(args.interval);
    }
}
