//! SLO-driven load generator for a running `esteem-serve` daemon.
//!
//! ```text
//! esteem-loadgen [options]
//!   --addr <host:port>       daemon address (default 127.0.0.1:7117)
//!   --mode open|closed       arrival model (default closed)
//!   --rps <r>                open-loop Poisson arrival rate
//!                            (default 50)
//!   --concurrency <n>        closed-loop virtual clients (default 4)
//!   --duration-s <s>         submission window (default 5)
//!   --seed <n>               schedule seed (default 0xE57EE21A)
//!   --clients <n>            distinct client labels lg0..lgN-1
//!                            (default 4)
//!   --hit-ratio <f>          fraction of jobs re-submitting an earlier
//!                            spec, i.e. run-cache hits (default 0)
//!   --expensive-frac <f>     fraction of expensive jobs (default 0.2)
//!   --cheap-instr <n>        cheap-job instructions (default 200000)
//!   --expensive-instr <n>    expensive-job instructions
//!                            (default 2000000)
//!   --workload <name>        benchmark submitted (default gamess)
//!   --warmup <cycles>        warm-up override on every job; "full"
//!                            keeps the simulator's 35M-cycle default
//!                            (default 200000 — cheap jobs are what
//!                            let a load test reach interesting rates)
//!   --priority <p>           job priority (default 1)
//!   --retries <n>            per-request retry budget; 429 retries
//!                            honor the daemon's Retry-After (default 0)
//!   --backoff-ms <ms>        base transport backoff (default 50)
//!   --poll-ms <ms>           completion poll cadence (default 5)
//!   --max-in-flight <n>      open-loop client-side cap (default 256)
//!   --sweep <c1,c2,...>      saturation sweep over closed-loop
//!                            concurrencies; emits the BENCH_serve.json
//!                            payload instead of a single-run report
//!   --out <file>             write the report there instead of stdout
//!   --smoke                  print the deterministic schedule digest
//!                            for the first 256 planned jobs and exit
//!                            (no daemon needed)
//! ```
//!
//! Single runs print a JSON [`esteem_serve::loadgen::Report`]; sweeps
//! print the `BENCH_serve.json` document (points + saturation RPS).

use std::process::ExitCode;
use std::time::Duration;

use esteem_serve::client::RetryPolicy;
use esteem_serve::loadgen::{self, LoadgenOptions, Mode};
use serde::Serialize;

const HELP: &str = "usage: esteem-loadgen [--addr host:port] [--mode open|closed] [--rps r] \
     [--concurrency n] [--duration-s s] [--seed n] [--clients n] [--hit-ratio f] \
     [--expensive-frac f] [--cheap-instr n] [--expensive-instr n] [--workload name] \
     [--warmup cycles|full] \
     [--priority p] [--retries n] [--backoff-ms ms] [--poll-ms ms] [--max-in-flight n] \
     [--sweep c1,c2,...] [--out file] [--smoke]";

struct Cli {
    opts: LoadgenOptions,
    sweep: Option<Vec<usize>>,
    out: Option<std::path::PathBuf>,
    smoke: bool,
}

fn parse() -> Result<Cli, String> {
    let mut opts = LoadgenOptions::default();
    let mut mode_open = false;
    let mut rps = 50.0f64;
    let mut concurrency = 4usize;
    let mut retries = 0u32;
    let mut backoff_ms = 50u64;
    let mut sweep = None;
    let mut out = None;
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = next(&mut it, "--addr")?,
            "--mode" => {
                mode_open = match next(&mut it, "--mode")?.as_str() {
                    "open" => true,
                    "closed" => false,
                    other => return Err(format!("--mode: open or closed, not {other}")),
                }
            }
            "--rps" => {
                rps = next(&mut it, "--rps")?
                    .parse()
                    .map_err(|e| format!("--rps: {e}"))?;
                if !rps.is_finite() || rps <= 0.0 {
                    return Err("--rps must be > 0".into());
                }
            }
            "--concurrency" => {
                concurrency = next(&mut it, "--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?;
                if concurrency == 0 {
                    return Err("--concurrency must be >= 1".into());
                }
            }
            "--duration-s" => {
                let s: f64 = next(&mut it, "--duration-s")?
                    .parse()
                    .map_err(|e| format!("--duration-s: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--duration-s must be > 0".into());
                }
                opts.duration = Duration::from_secs_f64(s);
            }
            "--seed" => {
                opts.seed = next(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--clients" => {
                opts.clients = next(&mut it, "--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
                if opts.clients == 0 {
                    return Err("--clients must be >= 1".into());
                }
            }
            "--hit-ratio" => {
                opts.hit_ratio = next(&mut it, "--hit-ratio")?
                    .parse()
                    .map_err(|e| format!("--hit-ratio: {e}"))?;
                if !(0.0..=1.0).contains(&opts.hit_ratio) {
                    return Err("--hit-ratio must be in [0, 1]".into());
                }
            }
            "--expensive-frac" => {
                opts.expensive_frac = next(&mut it, "--expensive-frac")?
                    .parse()
                    .map_err(|e| format!("--expensive-frac: {e}"))?;
                if !(0.0..=1.0).contains(&opts.expensive_frac) {
                    return Err("--expensive-frac must be in [0, 1]".into());
                }
            }
            "--cheap-instr" => {
                opts.cheap_instructions = next(&mut it, "--cheap-instr")?
                    .parse()
                    .map_err(|e| format!("--cheap-instr: {e}"))?
            }
            "--expensive-instr" => {
                opts.expensive_instructions = next(&mut it, "--expensive-instr")?
                    .parse()
                    .map_err(|e| format!("--expensive-instr: {e}"))?
            }
            "--workload" => opts.workload = next(&mut it, "--workload")?,
            "--warmup" => {
                let v = next(&mut it, "--warmup")?;
                opts.warmup = if v == "full" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("--warmup: {e}"))?)
                };
            }
            "--priority" => {
                opts.priority = next(&mut it, "--priority")?
                    .parse()
                    .map_err(|e| format!("--priority: {e}"))?
            }
            "--retries" => {
                retries = next(&mut it, "--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--backoff-ms" => {
                backoff_ms = next(&mut it, "--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?
            }
            "--poll-ms" => {
                let ms: u64 = next(&mut it, "--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}"))?;
                opts.poll_interval = Duration::from_millis(ms.max(1));
            }
            "--max-in-flight" => {
                opts.max_in_flight = next(&mut it, "--max-in-flight")?
                    .parse()
                    .map_err(|e| format!("--max-in-flight: {e}"))?;
                if opts.max_in_flight == 0 {
                    return Err("--max-in-flight must be >= 1".into());
                }
            }
            "--sweep" => {
                let spec = next(&mut it, "--sweep")?;
                let cs: Result<Vec<usize>, _> = spec.split(',').map(|s| s.trim().parse()).collect();
                let cs = cs.map_err(|e| format!("--sweep: {e}"))?;
                if cs.is_empty() || cs.contains(&0) {
                    return Err("--sweep needs concurrencies >= 1".into());
                }
                sweep = Some(cs);
            }
            "--out" => out = Some(next(&mut it, "--out")?.into()),
            "--smoke" => smoke = true,
            "-h" | "--help" => return Err(HELP.into()),
            other => return Err(format!("unknown flag {other}\n{HELP}")),
        }
    }
    opts.mode = if mode_open {
        Mode::Open { rps }
    } else {
        Mode::Closed { concurrency }
    };
    if retries > 0 {
        opts.retry = RetryPolicy::new(retries, backoff_ms).with_seed(opts.seed);
    }
    Ok(Cli {
        opts,
        sweep,
        out,
        smoke,
    })
}

fn emit(out: &Option<std::path::PathBuf>, body: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, format!("{body}\n"))
            .map_err(|e| format!("writing {}: {e}", path.display())),
        None => {
            println!("{body}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.smoke {
        // Pure planning path: prints the digest CI pins, no daemon.
        println!(
            "schedule digest: {:016x}",
            loadgen::schedule_digest(&cli.opts, 256)
        );
        return ExitCode::SUCCESS;
    }
    let body = match &cli.sweep {
        Some(cs) => {
            let v = loadgen::saturation_sweep(&cli.opts, cs, cli.opts.duration);
            serde_json::to_string_pretty(&v).expect("serializes")
        }
        None => {
            let report = loadgen::run(&cli.opts);
            serde_json::to_string_pretty(&report.to_value()).expect("serializes")
        }
    };
    match emit(&cli.out, &body) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
