//! Command-line client for the `esteem-serve` daemon and the
//! `esteem-coord` cluster coordinator.
//!
//! ```text
//! esteem-client <addr> submit [job-options] <benchmark|mix>
//! esteem-client <addr> poll <job-id>
//! esteem-client <addr> fetch <job-id>        # waits; prints the report
//!                                            # JSON exactly as
//!                                            # `esteem-sim --json` would
//! esteem-client <addr> events <job-id>       # streams interval JSONL
//! esteem-client <addr> sweep [job-options] --grid f=v1,v2 ... <benchmark|mix>
//! esteem-client <addr> sweep-status <sweep-id>
//! esteem-client <addr> sweep-report <sweep-id> [--wait]
//! esteem-client <addr> metrics
//! esteem-client <addr> get <path>            # raw GET, prints the body
//!                                            # (e.g. /v1/status,
//!                                            #  /v1/flight-recorder)
//! esteem-client <addr> shutdown
//!
//! Global flags (before or after the command):
//!   --retries n      retry transport errors n times (default 0)
//!   --backoff-ms ms  base delay for jittered exponential backoff
//!                    (default 250; doubles per retry, capped at 16x)
//!
//! job-options mirror esteem-sim flags:
//!   --technique t --retention us --instructions n --alpha f --a-min n
//!   --modules m --interval cycles --rs n --ecc-periods k --ecc-bits b
//!   --ways n --seed n --warmup cycles --priority p --client name
//! ```

use std::process::ExitCode;
use std::time::Duration;

use esteem_serve::client;
use esteem_serve::client::RetryPolicy;
use esteem_serve::JobSpec;
use serde::Value;

const HELP: &str = "usage: esteem-client [--retries n] [--backoff-ms ms] <addr> \
     <submit|poll|fetch|events|sweep|sweep-status|sweep-report|metrics|get|shutdown> ...";

fn next(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_spec(args: &[String]) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    let mut it = args.iter();
    macro_rules! parse_into {
        ($slot:expr, $it:expr, $flag:expr) => {
            $slot = next($it, $flag)?
                .parse()
                .map_err(|e| format!("{}: {e}", $flag))?
        };
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--technique" => spec.technique = next(&mut it, "--technique")?,
            "--retention" => parse_into!(spec.retention_us, &mut it, "--retention"),
            "--instructions" => parse_into!(spec.instructions, &mut it, "--instructions"),
            "--alpha" => parse_into!(spec.alpha, &mut it, "--alpha"),
            "--a-min" => parse_into!(spec.a_min, &mut it, "--a-min"),
            "--modules" => {
                let m = next(&mut it, "--modules")?
                    .parse()
                    .map_err(|e| format!("--modules: {e}"))?;
                spec.modules = Some(m);
            }
            "--interval" => parse_into!(spec.interval, &mut it, "--interval"),
            "--rs" => parse_into!(spec.rs, &mut it, "--rs"),
            "--ecc-periods" => parse_into!(spec.ecc_periods, &mut it, "--ecc-periods"),
            "--ecc-bits" => parse_into!(spec.ecc_bits, &mut it, "--ecc-bits"),
            "--ways" => parse_into!(spec.ways, &mut it, "--ways"),
            "--seed" => parse_into!(spec.seed, &mut it, "--seed"),
            "--warmup" => {
                let w = next(&mut it, "--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
                spec.warmup = Some(w);
            }
            "--priority" => parse_into!(spec.priority, &mut it, "--priority"),
            "--client" => spec.client = next(&mut it, "--client")?,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => spec.workload = other.to_owned(),
        }
    }
    if spec.workload.is_empty() {
        return Err("submit needs a workload (benchmark name or mix acronym)".into());
    }
    Ok(spec)
}

fn job_id(args: &[String]) -> Result<u64, String> {
    args.first()
        .ok_or("missing job id")?
        .parse()
        .map_err(|e| format!("job id: {e}"))
}

/// Pulls `--retries` / `--backoff-ms` out of the raw argument list
/// (allowed anywhere) and returns the retry policy plus remaining args.
fn split_retry_flags(args: Vec<String>) -> Result<(RetryPolicy, Vec<String>), String> {
    let mut retries = 0u32;
    let mut backoff_ms = 250u64;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--retries" => {
                retries = it
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--backoff-ms" => {
                backoff_ms = it
                    .next()
                    .ok_or("--backoff-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?;
            }
            _ => rest.push(arg),
        }
    }
    let policy = if retries == 0 {
        RetryPolicy::none()
    } else {
        RetryPolicy::new(retries, backoff_ms).with_seed(std::process::id().into())
    };
    Ok((policy, rest))
}

/// Parses one `--grid field=v1,v2,...` axis into `(field, values)`.
/// Values become JSON numbers where they parse as such, strings otherwise.
fn parse_grid_axis(arg: &str) -> Result<(String, Value), String> {
    let (field, values) = arg
        .split_once('=')
        .ok_or_else(|| format!("--grid wants field=v1,v2,... (got {arg:?})"))?;
    let mut seq = Vec::new();
    for raw in values.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let v = if let Ok(n) = raw.parse::<u64>() {
            Value::U64(n)
        } else if let Ok(n) = raw.parse::<i64>() {
            Value::I64(n)
        } else if let Ok(n) = raw.parse::<f64>() {
            Value::F64(n)
        } else {
            Value::Str(raw.to_owned())
        };
        seq.push(v);
    }
    if seq.is_empty() {
        return Err(format!("--grid {field}= has no values"));
    }
    Ok((field.to_owned(), Value::Seq(seq)))
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn sweep_progress(v: &Value) -> Option<(u64, u64, u64)> {
    let m = v.as_map()?;
    let get = |k: &str| {
        m.iter()
            .find(|(key, _)| key == k)
            .and_then(|(_, v)| as_u64(v))
    };
    Some((get("done")?, get("failed")?, get("total")?))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        return Err(HELP.into());
    }
    let (policy, args) = split_retry_flags(args)?;
    if args.len() < 2 {
        return Err(HELP.into());
    }
    let read_timeout = client::DEFAULT_READ_TIMEOUT;
    let addr = &args[0];
    let cmd = args[1].as_str();
    let rest = &args[2..];
    match cmd {
        "submit" => {
            let spec = parse_spec(rest)?;
            let resp = client::submit_with(addr, &spec, &policy, read_timeout)?;
            let mut note = String::new();
            if resp.coalesced {
                note.push_str(" (coalesced onto an identical in-flight job)");
            }
            if resp.cached {
                note.push_str(" (served from the run cache)");
            }
            println!("job {}{note}", resp.job);
            Ok(())
        }
        "poll" => {
            let (state, _) = client::poll_with(addr, job_id(rest)?, &policy, read_timeout)?;
            println!("{state}");
            Ok(())
        }
        "fetch" => {
            let result = client::fetch_with(
                addr,
                job_id(rest)?,
                Duration::from_millis(50),
                &policy,
                read_timeout,
            )?;
            // Byte-identical to `esteem-sim --json`: both pretty-print
            // the same report value.
            let pretty =
                serde_json::to_string_pretty(&result).map_err(|e| format!("encoding: {e}"))?;
            println!("{pretty}");
            Ok(())
        }
        "events" => {
            let status =
                client::stream_lines(addr, &format!("/v1/jobs/{}/events", job_id(rest)?), |l| {
                    println!("{l}");
                })?;
            if status != 200 {
                return Err(format!("events failed ({status})"));
            }
            Ok(())
        }
        "sweep" => {
            // Pull --grid axes out, hand everything else to parse_spec.
            let mut grid = Vec::new();
            let mut spec_args = Vec::new();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--grid" {
                    let axis = it.next().ok_or("--grid needs field=v1,v2,...")?;
                    let (field, values) = parse_grid_axis(axis)?;
                    grid.push((field, values));
                } else {
                    spec_args.push(arg.clone());
                }
            }
            if grid.is_empty() {
                return Err("sweep needs at least one --grid field=v1,v2,... axis".into());
            }
            let spec = parse_spec(&spec_args)?;
            let base: Value = serde_json::from_str(
                &serde_json::to_string(&spec).map_err(|e| format!("encoding spec: {e}"))?,
            )
            .map_err(|e| format!("round-tripping spec: {e}"))?;
            let body = serde_json::to_string(&Value::Map(vec![
                ("base".to_owned(), base),
                ("grid".to_owned(), Value::Map(grid)),
            ]))
            .map_err(|e| format!("encoding sweep: {e}"))?;
            let (status, resp) = client::request_with(
                addr,
                "POST",
                "/v1/sweeps",
                Some(&body),
                &policy,
                read_timeout,
            )?;
            if status != 202 {
                return Err(format!("sweep failed ({status}): {resp}"));
            }
            let v: Value = serde_json::from_str(&resp).map_err(|e| format!("bad response: {e}"))?;
            let m = v.as_map().ok_or("response is not an object")?;
            let get = |k: &str| {
                m.iter()
                    .find(|(key, _)| key == k)
                    .and_then(|(_, v)| as_u64(v))
            };
            println!(
                "sweep {} ({} jobs)",
                get("sweep").ok_or("response missing sweep id")?,
                get("total").unwrap_or(0)
            );
            Ok(())
        }
        "sweep-status" => {
            let id = job_id(rest)?;
            let (status, body) = client::request_with(
                addr,
                "GET",
                &format!("/v1/sweeps/{id}"),
                None,
                &policy,
                read_timeout,
            )?;
            if status != 200 {
                return Err(format!("sweep-status failed ({status}): {body}"));
            }
            println!("{body}");
            Ok(())
        }
        "sweep-report" => {
            let id = job_id(rest)?;
            if rest.iter().any(|a| a == "--wait") {
                loop {
                    let (status, body) = client::request_with(
                        addr,
                        "GET",
                        &format!("/v1/sweeps/{id}"),
                        None,
                        &policy,
                        read_timeout,
                    )?;
                    if status != 200 {
                        return Err(format!("sweep-report failed ({status}): {body}"));
                    }
                    let v: Value =
                        serde_json::from_str(&body).map_err(|e| format!("bad response: {e}"))?;
                    let (done, failed, total) =
                        sweep_progress(&v).ok_or("response missing progress counters")?;
                    if failed > 0 {
                        return Err(format!("sweep {id}: {failed}/{total} cells failed"));
                    }
                    if done == total {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
            let status = client::stream_lines(addr, &format!("/v1/sweeps/{id}/report"), |l| {
                println!("{l}");
            })?;
            if status != 200 {
                return Err(format!("sweep-report failed ({status})"));
            }
            Ok(())
        }
        "metrics" => {
            print!("{}", client::metrics(addr)?);
            Ok(())
        }
        "get" => {
            let path = rest.first().ok_or("get needs a path (e.g. /v1/status)")?;
            let (status, body) = client::request(addr, "GET", path, None)?;
            if status != 200 {
                return Err(format!("GET {path} -> {status}: {body}"));
            }
            println!("{body}");
            Ok(())
        }
        "shutdown" => client::shutdown(addr),
        other => Err(format!("unknown command '{other}'\n{HELP}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
