//! Command-line client for the `esteem-serve` daemon.
//!
//! ```text
//! esteem-client <addr> submit [job-options] <benchmark|mix>
//! esteem-client <addr> poll <job-id>
//! esteem-client <addr> fetch <job-id>        # waits; prints the report
//!                                            # JSON exactly as
//!                                            # `esteem-sim --json` would
//! esteem-client <addr> events <job-id>       # streams interval JSONL
//! esteem-client <addr> metrics
//! esteem-client <addr> get <path>            # raw GET, prints the body
//!                                            # (e.g. /v1/status,
//!                                            #  /v1/flight-recorder)
//! esteem-client <addr> shutdown
//!
//! job-options mirror esteem-sim flags:
//!   --technique t --retention us --instructions n --alpha f --a-min n
//!   --modules m --interval cycles --rs n --ecc-periods k --ecc-bits b
//!   --ways n --seed n --priority p --client name
//! ```

use std::process::ExitCode;
use std::time::Duration;

use esteem_serve::client;
use esteem_serve::JobSpec;

const HELP: &str =
    "usage: esteem-client <addr> <submit|poll|fetch|events|metrics|get|shutdown> ...";

fn next(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_spec(args: &[String]) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    let mut it = args.iter();
    macro_rules! parse_into {
        ($slot:expr, $it:expr, $flag:expr) => {
            $slot = next($it, $flag)?
                .parse()
                .map_err(|e| format!("{}: {e}", $flag))?
        };
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--technique" => spec.technique = next(&mut it, "--technique")?,
            "--retention" => parse_into!(spec.retention_us, &mut it, "--retention"),
            "--instructions" => parse_into!(spec.instructions, &mut it, "--instructions"),
            "--alpha" => parse_into!(spec.alpha, &mut it, "--alpha"),
            "--a-min" => parse_into!(spec.a_min, &mut it, "--a-min"),
            "--modules" => {
                let m = next(&mut it, "--modules")?
                    .parse()
                    .map_err(|e| format!("--modules: {e}"))?;
                spec.modules = Some(m);
            }
            "--interval" => parse_into!(spec.interval, &mut it, "--interval"),
            "--rs" => parse_into!(spec.rs, &mut it, "--rs"),
            "--ecc-periods" => parse_into!(spec.ecc_periods, &mut it, "--ecc-periods"),
            "--ecc-bits" => parse_into!(spec.ecc_bits, &mut it, "--ecc-bits"),
            "--ways" => parse_into!(spec.ways, &mut it, "--ways"),
            "--seed" => parse_into!(spec.seed, &mut it, "--seed"),
            "--priority" => parse_into!(spec.priority, &mut it, "--priority"),
            "--client" => spec.client = next(&mut it, "--client")?,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => spec.workload = other.to_owned(),
        }
    }
    if spec.workload.is_empty() {
        return Err("submit needs a workload (benchmark name or mix acronym)".into());
    }
    Ok(spec)
}

fn job_id(args: &[String]) -> Result<u64, String> {
    args.first()
        .ok_or("missing job id")?
        .parse()
        .map_err(|e| format!("job id: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.len() < 2 {
        return Err(HELP.into());
    }
    let addr = &args[0];
    let cmd = args[1].as_str();
    let rest = &args[2..];
    match cmd {
        "submit" => {
            let spec = parse_spec(rest)?;
            let resp = client::submit(addr, &spec)?;
            let mut note = String::new();
            if resp.coalesced {
                note.push_str(" (coalesced onto an identical in-flight job)");
            }
            if resp.cached {
                note.push_str(" (served from the run cache)");
            }
            println!("job {}{note}", resp.job);
            Ok(())
        }
        "poll" => {
            let (state, _) = client::poll(addr, job_id(rest)?)?;
            println!("{state}");
            Ok(())
        }
        "fetch" => {
            let result = client::fetch(addr, job_id(rest)?, Duration::from_millis(50))?;
            // Byte-identical to `esteem-sim --json`: both pretty-print
            // the same report value.
            let pretty =
                serde_json::to_string_pretty(&result).map_err(|e| format!("encoding: {e}"))?;
            println!("{pretty}");
            Ok(())
        }
        "events" => {
            let status =
                client::stream_lines(addr, &format!("/v1/jobs/{}/events", job_id(rest)?), |l| {
                    println!("{l}");
                })?;
            if status != 200 {
                return Err(format!("events failed ({status})"));
            }
            Ok(())
        }
        "metrics" => {
            print!("{}", client::metrics(addr)?);
            Ok(())
        }
        "get" => {
            let path = rest.first().ok_or("get needs a path (e.g. /v1/status)")?;
            let (status, body) = client::request(addr, "GET", path, None)?;
            if status != 200 {
                return Err(format!("GET {path} -> {status}: {body}"));
            }
            println!("{body}");
            Ok(())
        }
        "shutdown" => client::shutdown(addr),
        other => Err(format!("unknown command '{other}'\n{HELP}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
