//! Minimal hand-rolled HTTP/1.1 server (std only).
//!
//! Deliberately small: a blocking accept loop, one thread per
//! connection, request-line/header parsing with hard size limits,
//! `Content-Length` bodies, keep-alive, per-socket read/write timeouts,
//! and chunked responses for streaming endpoints. No TLS, no
//! compression, no routing DSL — the job API needs exactly none of
//! that, and every line here is auditable.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default upper bound on a request body (`Content-Length` or the
/// decoded size of a chunked body); see [`HttpServer::with_max_body`].
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Requests served per connection before the server closes it (a
/// backstop against one client pinning a connection thread forever).
const MAX_REQUESTS_PER_CONN: u32 = 1024;

/// Marker carried in the [`std::io::Error`] message for bodies over the
/// limit, so the connection loop can answer 413 instead of a generic
/// 400. Oversized bodies close the connection: the unread remainder of
/// the body would otherwise be parsed as the next request.
const TOO_LARGE: &str = "request body too large";

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (may be empty).
    pub query: String,
    /// Header names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What a handler returns. `Stream` bodies are written chunked, one
/// chunk per yielded string; the iterator may block between items.
pub enum HandlerResult {
    /// `application/json` body.
    Json(u16, String),
    /// `application/json` body plus extra response headers (the shed
    /// path's `Retry-After`/`retry-after-ms`). Header names must be
    /// valid HTTP tokens; values must be single-line.
    JsonHeaders(u16, String, Vec<(String, String)>),
    /// `text/plain` body.
    Text(u16, String),
    /// Body with an explicit `Content-Type` (e.g. the Prometheus
    /// exposition type for `/metrics`).
    Typed(u16, &'static str, String),
    /// Chunked `application/jsonl` stream of lines. The iterator may
    /// block while waiting for the next line; it ends the response by
    /// returning `None`.
    Stream(u16, Box<dyn Iterator<Item = String> + Send>),
}

pub type Handler = Arc<dyn Fn(&Request) -> HandlerResult + Send + Sync>;

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Counters the server exports via `/metrics`.
#[derive(Debug, Default)]
pub struct HttpCounters {
    pub accepted: AtomicU64,
    pub requests: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub parse_errors: AtomicU64,
}

struct ConnTracker {
    live: Mutex<usize>,
    zero: Condvar,
}

impl ConnTracker {
    fn enter(self: &Arc<Self>) -> ConnGuard {
        *self.live.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        ConnGuard(Arc::clone(self))
    }

    fn wait_zero(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        while *live > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .zero
                .wait_timeout(live, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            live = guard;
        }
        true
    }
}

struct ConnGuard(Arc<ConnTracker>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut live = self.0.live.lock().unwrap_or_else(|e| e.into_inner());
        *live -= 1;
        if *live == 0 {
            self.0.zero.notify_all();
        }
    }
}

/// Handle for stopping a running [`HttpServer`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests the accept loop to exit. Idempotent.
    pub fn stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The server: owns the listener and the connection threads.
pub struct HttpServer {
    listener: TcpListener,
    handler: Handler,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTracker>,
    pub counters: Arc<HttpCounters>,
    read_timeout: Duration,
    write_timeout: Duration,
    max_body: usize,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            handler,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(ConnTracker {
                live: Mutex::new(0),
                zero: Condvar::new(),
            }),
            counters: Arc::new(HttpCounters::default()),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_body: MAX_BODY_BYTES,
        })
    }

    /// Overrides the per-socket read/write timeouts (tests use short
    /// ones to exercise the slow-client path quickly).
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Overrides the request-body cap (`Content-Length` or decoded
    /// chunked size); bodies over it are rejected with 413.
    pub fn with_max_body(mut self, max_body: usize) -> Self {
        self.max_body = max_body.max(1);
        self
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Serves until [`ServerHandle::stop`] is called, then waits up to
    /// `drain` for in-flight connections to finish. Returns whether all
    /// connections drained in time.
    pub fn serve(self, drain: Duration) -> bool {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            let handler = Arc::clone(&self.handler);
            let counters = Arc::clone(&self.counters);
            let guard = self.conns.enter();
            let stop = Arc::clone(&self.stop);
            let (rt, wt) = (self.read_timeout, self.write_timeout);
            let max_body = self.max_body;
            std::thread::Builder::new()
                .name("esteem-serve-conn".into())
                .spawn(move || {
                    let _guard = guard;
                    let _ = serve_connection(stream, &handler, &counters, &stop, rt, wt, max_body);
                })
                .expect("spawn connection thread");
        }
        self.conns.wait_zero(drain)
    }
}

fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    counters: &HttpCounters,
    stop: &AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
    max_body: usize,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for _ in 0..MAX_REQUESTS_PER_CONN {
        let req = match read_request(&mut reader, max_body) {
            Ok(Some(req)) => req,
            // Clean end of connection (client closed between requests).
            Ok(None) => return Ok(()),
            Err(e) => {
                counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                // Timeouts on an idle keep-alive connection are routine;
                // anything else gets a best-effort 400 (413 for a body
                // over the cap) before closing.
                if e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut
                {
                    let msg = e.to_string();
                    let status = if msg.contains(TOO_LARGE) { 413 } else { 400 };
                    let _ = write_simple(&mut writer, status, "text/plain", msg, false);
                }
                return Ok(());
            }
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = !matches!(req.header("connection"), Some(c) if c.eq_ignore_ascii_case("close"))
            && !stop.load(Ordering::SeqCst);
        let result = handler(&req);
        let status = match &result {
            HandlerResult::Json(s, _)
            | HandlerResult::JsonHeaders(s, _, _)
            | HandlerResult::Text(s, _)
            | HandlerResult::Typed(s, _, _)
            | HandlerResult::Stream(s, _) => *s,
        };
        match status {
            200..=299 => counters.responses_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => counters.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => counters.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
        match result {
            HandlerResult::Json(status, body) => {
                write_simple(&mut writer, status, "application/json", body, keep_alive)?;
            }
            HandlerResult::JsonHeaders(status, body, extra) => {
                write_with_headers(
                    &mut writer,
                    status,
                    "application/json",
                    body,
                    keep_alive,
                    &extra,
                )?;
            }
            HandlerResult::Text(status, body) => {
                write_simple(&mut writer, status, "text/plain", body, keep_alive)?;
            }
            HandlerResult::Typed(status, content_type, body) => {
                write_simple(&mut writer, status, content_type, body, keep_alive)?;
            }
            HandlerResult::Stream(status, lines) => {
                write_chunked(&mut writer, status, lines, keep_alive)?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

/// Reads one request. `Ok(None)` means the client closed the connection
/// cleanly before sending a request line.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_owned();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let version = parts.next().ok_or_else(|| bad("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let chunked = headers
        .iter()
        .find(|(k, _)| k == "transfer-encoding")
        .is_some_and(|(_, v)| v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(reader, max_body)?
    } else {
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>())
            .transpose()
            .map_err(|_| bad("bad content-length"))?
            .unwrap_or(0);
        if content_length > max_body {
            return Err(bad(TOO_LARGE));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        body
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Decodes a `Transfer-Encoding: chunked` request body. The cumulative
/// payload is capped at `max_body`; crossing the cap aborts the read with a
/// [`TOO_LARGE`] error before the oversized chunk is buffered, so a hostile
/// client cannot make the server allocate more than the cap.
fn read_chunked_body(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> std::io::Result<Vec<u8>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(bad("connection closed mid-chunk"));
        }
        let size_str = size_line
            .trim_end_matches(['\r', '\n'])
            .split(';')
            .next()
            .unwrap_or("")
            .trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| bad("bad chunk size"))?;
        if size == 0 {
            // Trailer section: zero or more header lines, then a blank line.
            loop {
                let mut trailer = String::new();
                if reader.read_line(&mut trailer)? == 0 {
                    return Err(bad("connection closed mid-trailer"));
                }
                if trailer.trim_end_matches(['\r', '\n']).is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len().saturating_add(size) > max_body {
            return Err(bad(TOO_LARGE));
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("missing chunk terminator"));
        }
    }
}

fn write_simple(
    w: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: String,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_with_headers(w, status, content_type, body, keep_alive, &[])
}

fn write_with_headers(
    w: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: String,
    keep_alive: bool,
    extra: &[(String, String)],
) -> std::io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {conn}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

fn write_chunked(
    w: &mut TcpStream,
    status: u16,
    lines: Box<dyn Iterator<Item = String> + Send>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/jsonl\r\nTransfer-Encoding: chunked\r\nConnection: {conn}\r\n\r\n",
        reason(status),
    );
    w.write_all(head.as_bytes())?;
    w.flush()?;
    for line in lines {
        // One chunk per line, newline-terminated inside the chunk so a
        // consumer can split on lines without understanding chunking.
        let payload = format!("{line}\n");
        write!(w, "{:x}\r\n", payload.len())?;
        w.write_all(payload.as_bytes())?;
        w.write_all(b"\r\n")?;
        w.flush()?;
    }
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(handler: Handler) -> (ServerHandle, SocketAddr, std::thread::JoinHandle<bool>) {
        let server = HttpServer::bind("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve(Duration::from_secs(5)));
        (handle, addr, join)
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    /// Reads one full response (head + `Content-Length` body) from a
    /// keep-alive connection; a single `read` may return partial data.
    fn read_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            let text = String::from_utf8_lossy(&buf).into_owned();
            if let Some(head_end) = text.find("\r\n\r\n") {
                let content_length = text
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .unwrap_or(0);
                if buf.len() >= head_end + 4 + content_length {
                    return text;
                }
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-response: {text}");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn serves_and_keeps_alive() {
        let (handle, addr, join) = start(Arc::new(|req: &Request| {
            HandlerResult::Json(200, format!("{{\"path\":\"{}\"}}", req.path))
        }));
        // Two requests on one connection, then explicit close.
        let mut s = TcpStream::connect(addr).unwrap();
        for i in 0..2 {
            let close = if i == 1 { "Connection: close\r\n" } else { "" };
            s.write_all(format!("GET /ping{i} HTTP/1.1\r\nHost: x\r\n{close}\r\n").as_bytes())
                .unwrap();
            let text = read_response(&mut s);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
            assert!(text.contains(&format!("/ping{i}")), "got: {text}");
        }
        handle.stop();
        assert!(join.join().unwrap());
    }

    #[test]
    fn post_body_and_404() {
        let (handle, addr, join) = start(Arc::new(|req: &Request| {
            if req.path == "/echo" {
                HandlerResult::Text(200, String::from_utf8_lossy(&req.body).into_owned())
            } else {
                HandlerResult::Text(404, "not found".into())
            }
        }));
        let body = "hello server";
        let out = raw_roundtrip(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(out.contains("200 OK") && out.ends_with(body), "got: {out}");
        let out = raw_roundtrip(
            addr,
            "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(out.contains("404"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn malformed_request_gets_400() {
        let (handle, addr, join) = start(Arc::new(|_: &Request| {
            HandlerResult::Text(200, "ok".into())
        }));
        let out = raw_roundtrip(addr, "TOTAL GARBAGE\r\n\r\n");
        assert!(out.contains("400"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn chunked_stream_is_line_separable() {
        let (handle, addr, join) = start(Arc::new(|_: &Request| {
            let lines = vec!["{\"a\":1}".to_owned(), "{\"a\":2}".to_owned()];
            HandlerResult::Stream(200, Box::new(lines.into_iter()))
        }));
        let out = raw_roundtrip(
            addr,
            "GET /stream HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(out.contains("Transfer-Encoding: chunked"), "got: {out}");
        assert!(out.contains("{\"a\":1}") && out.contains("{\"a\":2}"));
        assert!(out.trim_end().ends_with("0"), "chunked terminator: {out}");
        handle.stop();
        join.join().unwrap();
    }

    fn start_cfg(
        handler: Handler,
        cfg: impl FnOnce(HttpServer) -> HttpServer,
    ) -> (ServerHandle, SocketAddr, std::thread::JoinHandle<bool>) {
        let server = cfg(HttpServer::bind("127.0.0.1:0", handler).unwrap());
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve(Duration::from_secs(5)));
        (handle, addr, join)
    }

    fn echo_handler() -> Handler {
        Arc::new(|req: &Request| {
            HandlerResult::Text(200, String::from_utf8_lossy(&req.body).into_owned())
        })
    }

    #[test]
    fn chunked_request_body_is_decoded() {
        let (handle, addr, join) = start(echo_handler());
        let out = raw_roundtrip(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\
             Connection: close\r\n\r\n5\r\nhello\r\n7;ext=1\r\n, world\r\n0\r\n\r\n",
        );
        assert!(out.contains("200 OK"), "got: {out}");
        assert!(out.ends_with("hello, world"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn oversized_chunked_body_gets_413() {
        let (handle, addr, join) = start_cfg(echo_handler(), |s| s.with_max_body(16));
        let payload = "x".repeat(64);
        let out = raw_roundtrip(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                 {:x}\r\n{payload}\r\n0\r\n\r\n",
                payload.len()
            ),
        );
        assert!(out.contains("413"), "got: {out}");
        // The connection is closed after a 413 (the remaining body bytes
        // would otherwise be parsed as a next request) — read_to_string in
        // raw_roundtrip returning proves the close.
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let (handle, addr, join) = start_cfg(echo_handler(), |s| s.with_max_body(16));
        let out = raw_roundtrip(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n",
        );
        assert!(out.contains("413"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn slow_header_client_times_out_without_wedging_accepts() {
        let (handle, addr, join) = start_cfg(
            Arc::new(|_: &Request| HandlerResult::Text(200, "ok".into())),
            |s| s.with_timeouts(Duration::from_millis(300), Duration::from_secs(5)),
        );
        // A client that sends half a request line and then stalls.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /slow HT").unwrap();
        // While the slow client holds its connection open, a normal client
        // must still be accepted and served (one thread per connection).
        let out = raw_roundtrip(
            addr,
            "GET /fast HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(out.contains("200 OK"), "accept loop wedged: {out}");
        // The slow connection is dropped once the read timeout fires:
        // the server closes without sending a response.
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let n = slow.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected silent close, got: {buf:?}");
        // Server remains responsive afterwards.
        let out = raw_roundtrip(
            addr,
            "GET /after HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(out.contains("200 OK"), "server dead after timeout: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_reuse_across_mixed_methods() {
        let (handle, addr, join) = start(Arc::new(|req: &Request| {
            HandlerResult::Text(
                200,
                format!("{} {} [{}]", req.method, req.path, req.body.len()),
            )
        }));
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let text = read_response(&mut s);
        assert!(text.ends_with("GET /a [0]"), "got: {text}");
        s.write_all(b"POST /b HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nxyz")
            .unwrap();
        let text = read_response(&mut s);
        assert!(text.ends_with("POST /b [3]"), "got: {text}");
        s.write_all(b"DELETE /c HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let text = read_response(&mut s);
        assert!(text.ends_with("DELETE /c [0]"), "got: {text}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn extra_headers_are_emitted_before_the_body() {
        let (handle, addr, join) = start(Arc::new(|_: &Request| {
            HandlerResult::JsonHeaders(
                429,
                "{\"error\":\"queue full\"}".into(),
                vec![
                    ("Retry-After".into(), "2".into()),
                    ("retry-after-ms".into(), "1500".into()),
                ],
            )
        }));
        let out = raw_roundtrip(
            addr,
            "GET /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        let head = out.split("\r\n\r\n").next().unwrap();
        assert!(out.starts_with("HTTP/1.1 429"), "got: {out}");
        assert!(head.contains("Retry-After: 2"), "got: {head}");
        assert!(head.contains("retry-after-ms: 1500"), "got: {head}");
        assert!(out.ends_with("{\"error\":\"queue full\"}"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }

    #[test]
    fn query_string_is_split_off() {
        let (handle, addr, join) = start(Arc::new(|req: &Request| {
            HandlerResult::Text(200, format!("{}|{}", req.path, req.query))
        }));
        let out = raw_roundtrip(
            addr,
            "GET /a/b?x=1&y=2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(out.ends_with("/a/b|x=1&y=2"), "got: {out}");
        handle.stop();
        join.join().unwrap();
    }
}
