//! Shared helpers for the Criterion benchmark targets.
//!
//! Each `benches/*.rs` target regenerates one of the paper's tables or
//! figures at `Scale::Bench` (2 M instructions) on a representative
//! workload subset, printing the figure's rows once and then measuring the
//! end-to-end regeneration time. The full-scale regenerations live in the
//! `esteem-repro` binary (`crates/harness`); these targets exist so
//! `cargo bench` exercises every experiment path and tracks simulator
//! throughput.

use criterion::Criterion;

/// Criterion configuration for whole-experiment benches: few samples,
/// bounded time — one sample is a full (small) experiment.
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_secs(3))
}

/// Representative single-core subset: one benchmark per behaviour class
/// (cache-resident, L2-latency-bound, streaming, non-LRU).
pub const SINGLE_SUBSET: &[&str] = &["gamess", "gobmk", "milc", "xalancbmk"];

/// Representative dual-core mixes (best case, streaming pair).
pub const DUAL_SUBSET: &[&str] = &["GkNe", "LsLb"];
