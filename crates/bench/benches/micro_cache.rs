//! Microbenchmarks of the cache substrate: demand-access throughput,
//! reconfiguration cost, and the embedded profiler.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use esteem_cache::{CacheGeometry, SetAssocCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn l2_4mb() -> SetAssocCache {
    SetAssocCache::new(
        CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8),
        Some(64),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_cache");
    group.throughput(Throughput::Elements(1));

    // Hot-hit path: repeated accesses to a small resident set.
    {
        let mut cache = l2_4mb();
        let blocks: Vec<u64> = (0..1024u64).collect();
        for &b in &blocks {
            cache.access(b, false, 0);
        }
        group.bench_function("access_hit", |bch| {
            let mut i = 0usize;
            bch.iter(|| {
                let b = blocks[i & 1023];
                i += 1;
                black_box(cache.access(b, false, i as u64))
            })
        });
    }

    // Miss/evict path: random accesses over 4x the capacity.
    {
        let mut cache = l2_4mb();
        let mut rng = SmallRng::seed_from_u64(2);
        group.bench_function("access_miss_evict", |bch| {
            bch.iter(|| {
                let b = rng.gen_range(0..(1u64 << 18) * 4);
                black_box(cache.access(b, rng.gen_bool(0.3), 1))
            })
        });
    }

    // Reconfiguration: shrink+grow one module of a dirty cache.
    {
        let mut cache = l2_4mb();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200_000 {
            let b = rng.gen_range(0..1u64 << 17);
            cache.access(b, true, 0);
        }
        group.bench_function("reconfigure_module_shrink_grow", |bch| {
            bch.iter(|| {
                let a = cache.set_module_active_ways(3, 4, 0);
                let b = cache.set_module_active_ways(3, 16, 0);
                black_box((a, b))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
