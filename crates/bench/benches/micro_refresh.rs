//! Microbenchmarks of the refresh machinery: the polyphase calendar
//! scheduler, whole-cache refresh advances per policy, and the contention
//! model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use esteem_cache::{CacheGeometry, SetAssocCache};
use esteem_edram::scheduler::{DueAction, PolyphaseScheduler};
use esteem_edram::{BankContention, RefreshEngine, RefreshPolicy, RetentionSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cache_filled(frac: f64) -> SetAssocCache {
    let g = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 1);
    let mut c = SetAssocCache::new(g, None);
    let lines = (g.total_slots() as f64 * frac) as u64;
    for b in 0..lines {
        c.access(b, b % 3 == 0, 0);
    }
    c
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_refresh");

    // Scheduler touch throughput (hot path: every L2 access under RPV).
    {
        let mut sched = PolyphaseScheduler::new(100_000, 4, 1 << 16);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cycle = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function("polyphase_touch", |b| {
            b.iter(|| {
                cycle += 13;
                sched.touch(rng.gen_range(0..1u32 << 16), cycle);
            })
        });
        // Keep the queue from growing without bound across iterations.
        sched.advance(cycle + 1_000_000, |_, _| DueAction::Drop);
    }

    // One retention period of refresh work per policy, 75%-valid cache.
    for policy in [
        RefreshPolicy::PeriodicAll,
        RefreshPolicy::PeriodicValid,
        RefreshPolicy::RPV,
        RefreshPolicy::RPD,
    ] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("advance_one_period/{}", policy.name()), |b| {
            b.iter_with_setup(
                || {
                    let mut cache = cache_filled(0.75);
                    let mut eng = RefreshEngine::new(
                        policy,
                        RetentionSpec {
                            period_cycles: 100_000,
                        },
                        &cache,
                    );
                    // Polyphase schedules need touches registered.
                    if policy.is_polyphase() {
                        let g = *cache.geometry();
                        for set in 0..g.sets {
                            for way in 0..g.ways {
                                if cache.line(set, way).valid {
                                    let out = cache.access(
                                        g.block_of(cache.line(set, way).tag, set),
                                        false,
                                        0,
                                    );
                                    eng.on_access(&out, 0);
                                }
                            }
                        }
                    }
                    (cache, eng)
                },
                |(mut cache, mut eng)| black_box(eng.advance(&mut cache, 100_000)),
            )
        });
    }

    // Contention model window roll.
    {
        let mut bc = BankContention::new(4, 100_000);
        let mut now = 0u64;
        group.bench_function("contention_roll_window", |b| {
            b.iter(|| {
                now += 100_000;
                for _ in 0..100 {
                    bc.access(1);
                }
                bc.roll_window(now, &[4096, 4096, 4096, 4096]);
                black_box(bc.mean_wait())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
