//! Figure 4 regeneration (dual-core, 50 us) on representative mixes.

use criterion::{criterion_group, criterion_main, Criterion};
use esteem_bench::{experiment_criterion, DUAL_SUBSET};
use esteem_harness::experiments::figs;
use esteem_harness::Scale;

fn bench(c: &mut Criterion) {
    let r = figs::run_dual_core(Scale::Bench, 50.0, 0, Some(DUAL_SUBSET));
    eprintln!("\n{}", figs::render(&r));
    c.bench_function("fig4_dual_core_50us/subset", |b| {
        b.iter(|| figs::run_dual_core(Scale::Bench, 50.0, 0, Some(DUAL_SUBSET)))
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
