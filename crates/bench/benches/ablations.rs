//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! Each ablation prints the *quality* effect (energy saving / MPKI /
//! active ratio with the feature on vs. off) and then times the on-variant
//! so `cargo bench` tracks it. Quality numbers use `Scale::Bench` runs.

use criterion::{criterion_group, criterion_main, Criterion};
use esteem_bench::experiment_criterion;
use esteem_core::{AlgoParams, Comparison, SystemConfig, Technique};
use esteem_harness::runcache::run_comparison_cached;
use esteem_harness::Scale;
use esteem_workloads::benchmark_by_name;

const SCALE: Scale = Scale::Bench;

fn cfg_for(t: Technique) -> SystemConfig {
    let mut cfg = SystemConfig::paper_single_core(t);
    cfg.sim_instructions = SCALE.instructions();
    cfg.warmup_cycles = SCALE.warmup_cycles();
    cfg
}

fn algo() -> AlgoParams {
    AlgoParams {
        interval_cycles: SCALE.interval_cycles(),
        ..AlgoParams::paper_single_core()
    }
}

fn run_esteem(bench: &str, tweak: impl Fn(&mut AlgoParams)) -> Comparison {
    let p = benchmark_by_name(bench).unwrap();
    let mut a = algo();
    tweak(&mut a);
    // Memoized via the harness run cache: the five ablations share their
    // per-benchmark baseline runs.
    run_comparison_cached(
        cfg_for,
        Technique::Esteem(a),
        std::slice::from_ref(&p),
        bench,
    )
}

/// Uncached variant for the timed benchmark (a cached run would measure
/// a hash-map lookup, not the simulator).
fn run_esteem_fresh(bench: &str) -> Comparison {
    let p = benchmark_by_name(bench).unwrap();
    esteem_core::run_comparison(
        cfg_for,
        Technique::Esteem(algo()),
        std::slice::from_ref(&p),
        bench,
    )
}

fn describe(label: &str, c: &Comparison) {
    eprintln!(
        "  {label:<34} save {:>6.2}%  WS {:>5.3}  dMPKI {:>6.3}  active {:>5.1}%",
        c.energy_saving_pct,
        c.weighted_speedup,
        c.mpki_increase,
        c.active_ratio * 100.0
    );
}

fn bench(c: &mut Criterion) {
    eprintln!("\n== Ablation: non-LRU guard (omnetpp) ==");
    describe("guard ON (paper)", &run_esteem("omnetpp", |_| {}));
    describe(
        "guard OFF",
        &run_esteem("omnetpp", |a| a.non_lru_guard = false),
    );

    eprintln!("\n== Ablation: shrink confirmation (bzip2) ==");
    describe("damping ON (default)", &run_esteem("bzip2", |_| {}));
    describe(
        "damping OFF (raw Algorithm 1)",
        &run_esteem("bzip2", |a| a.shrink_confirm = false),
    );

    eprintln!("\n== Ablation: per-module vs uniform reconfiguration (h264ref) ==");
    describe("8 modules (paper)", &run_esteem("h264ref", |_| {}));
    describe(
        "1 module (selective-ways only)",
        &run_esteem("h264ref", |a| a.modules = 1),
    );

    eprintln!("\n== Ablation: A_min=1 direct-mapped cliff (gobmk) ==");
    describe("A_min=3 (paper)", &run_esteem("gobmk", |_| {}));
    describe(
        "A_min=1 (direct-mapped floor)",
        &run_esteem("gobmk", |a| a.a_min = 1),
    );

    eprintln!("\n== Ablation: max_step reconfiguration limiter (gcc) ==");
    describe("unbounded (paper)", &run_esteem("gcc", |_| {}));
    describe(
        "max_step=2 (future-work ext.)",
        &run_esteem("gcc", |a| a.max_step = Some(2)),
    );

    c.bench_function("ablations/esteem_omnetpp_guarded", |b| {
        b.iter(|| run_esteem_fresh("omnetpp"))
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
