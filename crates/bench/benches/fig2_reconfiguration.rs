//! Figure 2 regeneration: ESTEEM's per-interval reconfiguration trace for
//! h264ref (per-module active ways over time).

use criterion::{criterion_group, criterion_main, Criterion};
use esteem_bench::experiment_criterion;
use esteem_harness::experiments::fig2;
use esteem_harness::Scale;

fn bench(c: &mut Criterion) {
    // Print the regenerated figure once (bench scale).
    let r = fig2::run(Scale::Bench, "h264ref");
    eprintln!("\n{}", fig2::render(&r));
    c.bench_function("fig2/h264ref_reconfiguration_trace", |b| {
        b.iter(|| fig2::run(Scale::Bench, "h264ref"))
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
