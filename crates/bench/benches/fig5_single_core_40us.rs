//! Figure 5 regeneration (single-core, 40 us) on a representative subset.

use criterion::{criterion_group, criterion_main, Criterion};
use esteem_bench::{experiment_criterion, SINGLE_SUBSET};
use esteem_harness::experiments::figs;
use esteem_harness::Scale;

fn bench(c: &mut Criterion) {
    let r = figs::run_single_core(Scale::Bench, 40.0, 0, Some(SINGLE_SUBSET));
    eprintln!("\n{}", figs::render(&r));
    c.bench_function("fig5_single_core_40us/subset", |b| {
        b.iter(|| figs::run_single_core(Scale::Bench, 40.0, 0, Some(SINGLE_SUBSET)))
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
