//! Microbenchmarks of the workload generators: bundle throughput per
//! behaviour class and end-to-end simulator throughput (instructions per
//! second of simulation).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use esteem_core::{Simulator, SystemConfig, Technique};
use esteem_workloads::{benchmark_by_name, AccessStream};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_workloads");

    for name in ["gamess", "mcf", "libquantum", "omnetpp", "h264ref"] {
        let p = benchmark_by_name(name).unwrap();
        let mut stream = AccessStream::new(&p, 0, 1);
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("next_bundle/{name}"), |b| {
            b.iter(|| black_box(stream.next_bundle()))
        });
    }

    // Whole-simulator throughput: instructions simulated per wall second.
    {
        let p = benchmark_by_name("bzip2").unwrap();
        let instrs = 300_000u64;
        group.throughput(Throughput::Elements(instrs));
        group.sample_size(10);
        group.bench_function("simulator_throughput/bzip2_300k_instrs", |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::paper_single_core(Technique::Baseline);
                cfg.sim_instructions = instrs;
                cfg.warmup_cycles = 0;
                black_box(Simulator::single(cfg, &p).run())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
