//! Table 3 regeneration: the full 17-variant parameter-sensitivity sweep
//! on a two-benchmark subset.

use criterion::{criterion_group, criterion_main, Criterion};
use esteem_harness::experiments::table3;
use esteem_harness::Scale;

fn bench(c: &mut Criterion) {
    let subset: &[&str] = &["gamess"];
    let r = table3::run(1, Scale::Bench, 0, Some(subset));
    eprintln!("\n{}", table3::render(&r));
    let mut group = c.benchmark_group("table3");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(15));
    group.bench_function("single_core_17_variants_subset", |b| {
        b.iter(|| table3::run(1, Scale::Bench, 0, Some(subset)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
