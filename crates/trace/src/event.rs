//! The typed event taxonomy (see DESIGN.md §12 for the narrative form).
//!
//! Every event is a self-contained record: it carries the simulated cycle
//! it happened at (or wall-clock microseconds for profiler spans) plus
//! the inputs that justified it, so an offline reader never needs the
//! simulator's state to interpret a trace. Events serialize with serde's
//! external tagging (`{"ReconfigDecision": {...}}`), one JSON object per
//! line in the compact JSONL log.

use serde::{Deserialize, Serialize};

/// Event classes, used by [`TraceFilter`](crate::TraceFilter) to select
/// what a tracer records and by the exporters to assign Perfetto tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Controller decisions and applied reconfigurations.
    Reconfig,
    /// Refresh batches performed by the refresh engine.
    Refresh,
    /// Bank-contention window rollovers (DRAM-contention stalls).
    Bank,
    /// Run-cache lookups in the experiment harness.
    RunCache,
    /// Interval observation samples bridged from `esteem-stats`.
    Interval,
    /// Wall-clock self-profiling spans (`prof_span!`).
    Span,
}

impl EventKind {
    /// All kinds, in filter-name order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Reconfig,
        EventKind::Refresh,
        EventKind::Bank,
        EventKind::RunCache,
        EventKind::Interval,
        EventKind::Span,
    ];

    /// The name used in `--trace-filter` lists.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Reconfig => "reconfig",
            EventKind::Refresh => "refresh",
            EventKind::Bank => "bank",
            EventKind::RunCache => "runcache",
            EventKind::Interval => "interval",
            EventKind::Span => "span",
        }
    }

    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    pub(crate) fn bit(self) -> u8 {
        match self {
            EventKind::Reconfig => 1 << 0,
            EventKind::Refresh => 1 << 1,
            EventKind::Bank => 1 << 2,
            EventKind::RunCache => 1 << 3,
            EventKind::Interval => 1 << 4,
            EventKind::Span => 1 << 5,
        }
    }
}

/// One structured trace event.
///
/// Cycle-stamped variants describe *simulated* time; [`TraceEvent::Span`]
/// describes *wall* time (microseconds since the tracer was created).
/// The two never share a Perfetto track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// One module's Algorithm 1 decision at an interval boundary, with
    /// the inputs that justified it: the interval's leader-set hit mass,
    /// the anomaly count behind the non-LRU guard, and whether shrink
    /// confirmation deferred the request.
    ReconfigDecision {
        cycle: u64,
        module: u16,
        /// Active ways before the decision.
        prev_ways: u8,
        /// What Algorithm 1 asked for this interval.
        want_ways: u8,
        /// What was actually applied (damping may defer or clamp).
        applied_ways: u8,
        /// Total ATD hits the decision was computed over.
        total_hits: u64,
        /// Non-monotone LRU-position inversions counted by the guard.
        anomalies: u64,
        /// Whether the non-LRU guard limited turn-off.
        non_lru: bool,
        /// Whether shrink confirmation deferred the request this interval.
        deferred: bool,
        /// Valid lines resident in the module when the decision fired
        /// (the data at stake in a shrink).
        valid_lines: u64,
    },
    /// Aggregate work of one applied reconfiguration (all modules).
    ReconfigApply {
        cycle: u64,
        slot_transitions: u64,
        writebacks: u64,
        discards: u64,
    },
    /// One refresh-engine advance that performed work.
    RefreshBatch {
        cycle: u64,
        refreshes: u64,
        invalidations: u64,
        /// Lines still queued in the polyphase scheduler afterwards
        /// (zero for purely periodic policies).
        pending: u64,
    },
    /// One bank-contention window rollover: the modelled DRAM-contention
    /// stall every demand access will pay over the next window.
    BankWindow {
        cycle: u64,
        /// Refresh operations folded into the closed window (all banks).
        refreshes: u64,
        /// Mean modelled wait per access, cycles.
        mean_wait: f64,
        /// Mean bank utilization over the closed window.
        utilization: f64,
    },
    /// One run-cache lookup in the experiment harness.
    RunCache { fingerprint: u64, hit: bool },
    /// One interval observation bridged from the stats subsystem
    /// (deltas over the interval, same semantics as the interval log).
    Interval {
        cycle: u64,
        span_cycles: u64,
        active_fraction: f64,
        l2_hits: u64,
        l2_misses: u64,
        refreshes: u64,
        invalidations: u64,
        mem_reads: u64,
        mem_writes: u64,
        slot_transitions: u64,
        instructions: u64,
    },
    /// One wall-clock self-profiling span.
    Span {
        name: String,
        /// Microseconds since the tracer's epoch.
        start_us: f64,
        /// Span duration, microseconds.
        dur_us: f64,
    },
}

impl TraceEvent {
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::ReconfigDecision { .. } | TraceEvent::ReconfigApply { .. } => {
                EventKind::Reconfig
            }
            TraceEvent::RefreshBatch { .. } => EventKind::Refresh,
            TraceEvent::BankWindow { .. } => EventKind::Bank,
            TraceEvent::RunCache { .. } => EventKind::RunCache,
            TraceEvent::Interval { .. } => EventKind::Interval,
            TraceEvent::Span { .. } => EventKind::Span,
        }
    }

    /// Simulated cycle for cycle-stamped events; `None` for spans and
    /// run-cache lookups (which have no simulated timestamp).
    pub fn cycle(&self) -> Option<u64> {
        match *self {
            TraceEvent::ReconfigDecision { cycle, .. }
            | TraceEvent::ReconfigApply { cycle, .. }
            | TraceEvent::RefreshBatch { cycle, .. }
            | TraceEvent::BankWindow { cycle, .. }
            | TraceEvent::Interval { cycle, .. } => Some(cycle),
            TraceEvent::RunCache { .. } | TraceEvent::Span { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.name()), Some(k));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn event_kind_and_cycle() {
        let ev = TraceEvent::RefreshBatch {
            cycle: 100,
            refreshes: 3,
            invalidations: 0,
            pending: 7,
        };
        assert_eq!(ev.kind(), EventKind::Refresh);
        assert_eq!(ev.cycle(), Some(100));
        let span = TraceEvent::Span {
            name: "run".into(),
            start_us: 0.0,
            dur_us: 12.5,
        };
        assert_eq!(span.kind(), EventKind::Span);
        assert_eq!(span.cycle(), None);
    }

    #[test]
    fn events_serialize_externally_tagged_and_roundtrip() {
        let ev = TraceEvent::ReconfigDecision {
            cycle: 10_000_000,
            module: 3,
            prev_ways: 16,
            want_ways: 3,
            applied_ways: 16,
            total_hits: 18506,
            anomalies: 1,
            non_lru: false,
            deferred: true,
            valid_lines: 4096,
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.starts_with("{\"ReconfigDecision\":{"));
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
