//! Trace exporters: Chrome trace-event JSON (Perfetto/`chrome://tracing`)
//! and the compact JSONL event log the offline `esteem-trace` analyzer
//! consumes.
//!
//! The Chrome export lays events out on two processes:
//!
//! * **pid 0 "simulated time"** — cycle-stamped events, one thread per
//!   event class, with `ts` = cycle / 1000 (so 1 "µs" in the viewer is
//!   1000 simulated cycles). Module way grants and interval activity
//!   also emit counter tracks, which Perfetto renders as step plots.
//! * **pid 1 "wall clock"** — `prof_span!` spans as complete (`ph:"X"`)
//!   events with real microsecond timestamps, plus run-cache lookups as
//!   instants (they happen in harness wall time, not simulated time).
//!
//! Span events are recorded at *drop* (end) time, so the raw buffer is
//! ordered by end, not start; the exporter sorts every track by
//! timestamp so `ts` is monotonic within each `(pid, tid)` track — some
//! viewers reject files that are not.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Serialize, Value};

use crate::event::TraceEvent;
use crate::Tracer;

/// One pre-sorted Chrome trace-event row.
struct Row {
    pid: u64,
    tid: u64,
    ts: f64,
    ph: char,
    name: String,
    dur: Option<f64>,
    args: Value,
}

const PID_SIM: u64 = 0;
const PID_WALL: u64 = 1;

/// Thread ids on the simulated-time process, one per event class so
/// Perfetto gives each class its own track.
const TID_RECONFIG: u64 = 1;
const TID_REFRESH: u64 = 2;
const TID_BANK: u64 = 3;
const TID_INTERVAL: u64 = 4;
const TID_COUNTERS: u64 = 5;

/// Thread ids on the wall-clock process.
const TID_SPANS: u64 = 1;
const TID_RUNCACHE: u64 = 2;

/// Simulated cycles per viewer microsecond.
const CYCLES_PER_US: f64 = 1000.0;

fn variant_name_and_args(ev: &TraceEvent) -> (String, Value) {
    // Externally tagged serialization is {"VariantName": {fields...}};
    // reuse it so event names and args never drift from the taxonomy.
    match ev.to_value() {
        Value::Map(entries) if entries.len() == 1 => {
            let (name, args) = entries.into_iter().next().expect("len checked");
            (name, args)
        }
        other => ("TraceEvent".to_owned(), other),
    }
}

fn rows_for(ev: &TraceEvent, out: &mut Vec<Row>) {
    let (name, args) = variant_name_and_args(ev);
    match ev {
        TraceEvent::ReconfigDecision {
            cycle,
            module,
            applied_ways,
            ..
        } => {
            let ts = *cycle as f64 / CYCLES_PER_US;
            out.push(Row {
                pid: PID_SIM,
                tid: TID_RECONFIG,
                ts,
                ph: 'i',
                name,
                dur: None,
                args,
            });
            out.push(Row {
                pid: PID_SIM,
                tid: TID_COUNTERS,
                ts,
                ph: 'C',
                name: format!("ways.module{module}"),
                dur: None,
                args: Value::Map(vec![("ways".into(), Value::U64(u64::from(*applied_ways)))]),
            });
        }
        TraceEvent::ReconfigApply { cycle, .. } => out.push(Row {
            pid: PID_SIM,
            tid: TID_RECONFIG,
            ts: *cycle as f64 / CYCLES_PER_US,
            ph: 'i',
            name,
            dur: None,
            args,
        }),
        TraceEvent::RefreshBatch { cycle, .. } => out.push(Row {
            pid: PID_SIM,
            tid: TID_REFRESH,
            ts: *cycle as f64 / CYCLES_PER_US,
            ph: 'i',
            name,
            dur: None,
            args,
        }),
        TraceEvent::BankWindow { cycle, .. } => out.push(Row {
            pid: PID_SIM,
            tid: TID_BANK,
            ts: *cycle as f64 / CYCLES_PER_US,
            ph: 'i',
            name,
            dur: None,
            args,
        }),
        TraceEvent::Interval {
            cycle,
            active_fraction,
            ..
        } => {
            let ts = *cycle as f64 / CYCLES_PER_US;
            out.push(Row {
                pid: PID_SIM,
                tid: TID_INTERVAL,
                ts,
                ph: 'i',
                name,
                dur: None,
                args,
            });
            out.push(Row {
                pid: PID_SIM,
                tid: TID_COUNTERS,
                ts,
                ph: 'C',
                name: "active_fraction".into(),
                dur: None,
                args: Value::Map(vec![("fraction".into(), Value::F64(*active_fraction))]),
            });
        }
        TraceEvent::RunCache { hit, .. } => out.push(Row {
            pid: PID_WALL,
            tid: TID_RUNCACHE,
            // Run-cache lookups carry no timestamp of their own; order of
            // occurrence is preserved by the stable sort below.
            ts: 0.0,
            ph: 'i',
            name: format!("{name}.{}", if *hit { "hit" } else { "miss" }),
            dur: None,
            args,
        }),
        TraceEvent::Span {
            start_us, dur_us, ..
        } => {
            let span_name = match ev {
                TraceEvent::Span { name, .. } => name.clone(),
                _ => unreachable!(),
            };
            out.push(Row {
                pid: PID_WALL,
                tid: TID_SPANS,
                ts: *start_us,
                ph: 'X',
                name: span_name,
                dur: Some(*dur_us),
                args: Value::Map(Vec::new()),
            });
        }
    }
}

fn metadata_row(pid: u64, tid: Option<u64>, kind: &str, label: &str) -> Value {
    let mut entries = vec![
        ("name".into(), Value::Str(kind.into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        entries.push(("tid".into(), Value::U64(tid)));
    }
    entries.push((
        "args".into(),
        Value::Map(vec![("name".into(), Value::Str(label.into()))]),
    ));
    Value::Map(entries)
}

fn row_to_value(row: Row) -> Value {
    let mut entries = vec![
        ("name".into(), Value::Str(row.name)),
        ("ph".into(), Value::Str(row.ph.to_string())),
        ("pid".into(), Value::U64(row.pid)),
        ("tid".into(), Value::U64(row.tid)),
        ("ts".into(), Value::F64(row.ts)),
    ];
    if let Some(dur) = row.dur {
        entries.push(("dur".into(), Value::F64(dur)));
    }
    if row.ph == 'i' {
        // Instant scope: thread-local keeps the marks small in the UI.
        entries.push(("s".into(), Value::Str("t".into())));
    }
    entries.push(("args".into(), row.args));
    Value::Map(entries)
}

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form). `ts` is monotonically
/// non-decreasing within each `(pid, tid)` track.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut rows = Vec::with_capacity(events.len());
    for ev in events {
        rows_for(ev, &mut rows);
    }
    // Stable sort: equal-ts events (e.g. all run-cache lookups) keep
    // their order of occurrence.
    rows.sort_by(|a, b| {
        (a.pid, a.tid)
            .cmp(&(b.pid, b.tid))
            .then(a.ts.total_cmp(&b.ts))
    });

    let mut trace_events = vec![
        metadata_row(PID_SIM, None, "process_name", "simulated time"),
        metadata_row(PID_SIM, Some(TID_RECONFIG), "thread_name", "reconfig"),
        metadata_row(PID_SIM, Some(TID_REFRESH), "thread_name", "refresh"),
        metadata_row(PID_SIM, Some(TID_BANK), "thread_name", "bank contention"),
        metadata_row(PID_SIM, Some(TID_INTERVAL), "thread_name", "intervals"),
        metadata_row(PID_SIM, Some(TID_COUNTERS), "thread_name", "counters"),
        metadata_row(PID_WALL, None, "process_name", "wall clock"),
        metadata_row(PID_WALL, Some(TID_SPANS), "thread_name", "profiler spans"),
        metadata_row(PID_WALL, Some(TID_RUNCACHE), "thread_name", "run cache"),
    ];
    trace_events.extend(rows.into_iter().map(row_to_value));

    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(trace_events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("value serialization is infallible")
}

/// Writes events as compact JSONL, one externally tagged event per line.
pub fn write_jsonl<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    for ev in events {
        let line = serde_json::to_string(ev)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a JSONL event log written by [`write_jsonl`]. Blank lines are
/// skipped; a malformed line is an error naming its line number.
pub fn read_jsonl<R: io::Read>(r: R) -> io::Result<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = serde_json::from_str::<TraceEvent>(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", idx + 1),
            )
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// Drains `tracer` and writes its events to `path`, choosing the format
/// by extension: `.json` → Chrome trace-event JSON, anything else →
/// compact JSONL. Returns the number of events written.
pub fn export_to_path(tracer: &Tracer, path: &Path) -> io::Result<usize> {
    let events = tracer.drain();
    let dropped = tracer.dropped();
    if dropped > 0 {
        eprintln!("esteem-trace: ring buffer dropped {dropped} oldest events (raise --trace-buffer for full coverage)");
    }
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let chrome = path.extension().and_then(|e| e.to_str()) == Some("json");
    if chrome {
        w.write_all(chrome_trace(&events).as_bytes())?;
        w.write_all(b"\n")?;
    } else {
        write_jsonl(&mut w, &events)?;
    }
    w.flush()?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::map_get;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RefreshBatch {
                cycle: 2_000,
                refreshes: 4,
                invalidations: 0,
                pending: 9,
            },
            TraceEvent::ReconfigDecision {
                cycle: 10_000,
                module: 0,
                prev_ways: 16,
                want_ways: 8,
                applied_ways: 12,
                total_hits: 500,
                anomalies: 2,
                non_lru: false,
                deferred: false,
                valid_lines: 1024,
            },
            TraceEvent::ReconfigApply {
                cycle: 10_000,
                slot_transitions: 4,
                writebacks: 17,
                discards: 3,
            },
            // Outer span: recorded *after* the inner span (drop order),
            // but starts earlier — the exporter must reorder.
            TraceEvent::Span {
                name: "inner".into(),
                start_us: 50.0,
                dur_us: 10.0,
            },
            TraceEvent::Span {
                name: "outer".into(),
                start_us: 10.0,
                dur_us: 100.0,
            },
            TraceEvent::RunCache {
                fingerprint: 0xdead_beef,
                hit: true,
            },
        ]
    }

    fn track_key(entries: &[(String, Value)]) -> (u64, u64) {
        let pid = match map_get(entries, "pid").unwrap() {
            Value::U64(v) => *v,
            Value::I64(v) => *v as u64,
            other => panic!("pid {other:?}"),
        };
        let tid = match map_get(entries, "tid") {
            Ok(Value::U64(v)) => *v,
            Ok(Value::I64(v)) => *v as u64,
            _ => 0,
        };
        (pid, tid)
    }

    #[test]
    fn chrome_trace_parses_and_ts_monotonic_per_track() {
        let json = chrome_trace(&sample_events());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let top = doc.as_map().unwrap();
        let events = map_get(top, "traceEvents").unwrap().as_seq().unwrap();
        assert!(!events.is_empty());

        let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
        let mut non_meta = 0;
        for ev in events {
            let entries = ev.as_map().unwrap();
            let ph = map_get(entries, "ph").unwrap().as_str().unwrap();
            if ph == "M" {
                continue;
            }
            non_meta += 1;
            let ts = match map_get(entries, "ts").unwrap() {
                Value::F64(v) => *v,
                Value::U64(v) => *v as f64,
                Value::I64(v) => *v as f64,
                other => panic!("ts {other:?}"),
            };
            let key = track_key(entries);
            if let Some(prev) = last_ts.get(&key) {
                assert!(ts >= *prev, "ts regressed on track {key:?}");
            }
            last_ts.insert(key, ts);
        }
        assert_eq!(non_meta, 7, "6 events -> 7 rows (1 ways counter)");
    }

    #[test]
    fn chrome_trace_emits_way_counter_rows() {
        let json = chrome_trace(&sample_events());
        assert!(json.contains("\"ways.module0\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("RunCache.hit"));
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn read_jsonl_reports_bad_line_number() {
        let text = "{\"RunCache\":{\"fingerprint\":1,\"hit\":true}}\n\nnot json\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn export_to_path_picks_format_by_extension() {
        let dir = std::env::temp_dir().join(format!("esteem-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = sample_events();

        let t = Tracer::ring(64, crate::TraceFilter::all());
        for ev in &events {
            t.emit(ev.kind(), || ev.clone());
        }
        let json_path = dir.join("trace.json");
        let n = export_to_path(&t, &json_path).unwrap();
        assert_eq!(n, events.len());
        let text = std::fs::read_to_string(&json_path).unwrap();
        assert!(text.trim_start().starts_with("{\"traceEvents\""));

        let u = Tracer::ring(64, crate::TraceFilter::all());
        for ev in &events {
            u.emit(ev.kind(), || ev.clone());
        }
        let jsonl_path = dir.join("trace.jsonl");
        export_to_path(&u, &jsonl_path).unwrap();
        let back = read_jsonl(std::fs::File::open(&jsonl_path).unwrap()).unwrap();
        assert_eq!(back, events);

        std::fs::remove_dir_all(&dir).ok();
    }
}
