//! Span-based wall-clock self-profiling.
//!
//! [`prof_span!`](crate::prof_span) opens a span that records a
//! [`TraceEvent::Span`] when
//! it leaves scope. Two gates keep instrumented hot paths honest:
//!
//! * **Compile time** — without the crate's `self-profile` feature the
//!   guard is a unit struct and every site compiles to nothing.
//! * **Run time** — with the feature on (the default), a site costs one
//!   branch when the tracer is off or span events are filtered out; the
//!   two `Instant::now()` calls only happen when the span will actually
//!   be recorded.
//!
//! Spans measure *wall* time and therefore never feed back into the
//! (deterministic, cycle-accurate) simulation — they exist to show where
//! the simulator itself spends real seconds.

#[cfg(feature = "self-profile")]
use crate::event::{EventKind, TraceEvent};
use crate::Tracer;

/// RAII guard recording one wall-clock span on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    #[cfg(feature = "self-profile")]
    active: Option<(Tracer, String, f64)>,
}

pub(crate) fn span(tracer: &Tracer, name: &str) -> SpanGuard {
    #[cfg(feature = "self-profile")]
    {
        if tracer.enabled(EventKind::Span) {
            let start_us = tracer.elapsed_us();
            return SpanGuard {
                active: Some((tracer.clone(), name.to_owned(), start_us)),
            };
        }
        SpanGuard { active: None }
    }
    #[cfg(not(feature = "self-profile"))]
    {
        let _ = (tracer, name);
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "self-profile")]
        if let Some((tracer, name, start_us)) = self.active.take() {
            let dur_us = (tracer.elapsed_us() - start_us).max(0.0);
            tracer.emit(EventKind::Span, || TraceEvent::Span {
                name,
                start_us,
                dur_us,
            });
        }
    }
}

/// Opens a named wall-clock span covering the rest of the enclosing
/// scope: `prof_span!(tracer, "sim.run");`.
#[macro_export]
macro_rules! prof_span {
    ($tracer:expr, $name:expr) => {
        let _prof_span_guard = $tracer.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};
    use crate::TraceFilter;

    #[test]
    fn span_records_on_drop() {
        let t = Tracer::ring(16, TraceFilter::all());
        {
            prof_span!(t, "outer");
            {
                prof_span!(t, "inner");
            }
        }
        let evs = t.drain();
        if cfg!(feature = "self-profile") {
            assert_eq!(evs.len(), 2);
            // Inner drops first.
            let names: Vec<&str> = evs
                .iter()
                .map(|e| match e {
                    TraceEvent::Span { name, .. } => name.as_str(),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(names, vec!["inner", "outer"]);
            for e in &evs {
                if let TraceEvent::Span {
                    start_us, dur_us, ..
                } = e
                {
                    assert!(*start_us >= 0.0 && *dur_us >= 0.0);
                }
            }
        } else {
            assert!(evs.is_empty());
        }
    }

    #[test]
    fn disabled_tracer_spans_are_noops() {
        let t = Tracer::off();
        {
            prof_span!(t, "nothing");
        }
        assert!(t.drain().is_empty());
    }

    #[test]
    fn span_filter_suppresses_spans() {
        let t = Tracer::ring(16, TraceFilter::none().with(EventKind::Reconfig));
        {
            prof_span!(t, "filtered");
        }
        assert!(t.drain().is_empty());
    }
}
