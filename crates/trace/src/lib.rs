//! Event tracing and self-profiling for the ESTEEM simulator stack.
//!
//! The interval log (`esteem-stats`) answers *what* each interval did;
//! this crate answers *why*: which module reconfigurations fired (and the
//! Algorithm 1 inputs that justified them), which refresh batches ran,
//! what the DRAM-contention model charged, where the harness's run cache
//! hit, and where simulator wall-time goes. Three layers:
//!
//! * **Events** — a typed [`TraceEvent`] taxonomy recorded through a
//!   cheap, cloneable [`Tracer`] handle into a [`TraceSink`] (the default
//!   [`RingTracer`] is a bounded drop-oldest ring buffer, so tracing a
//!   long run can never exhaust memory).
//! * **Self-profiling** — [`prof_span!`] wall-clock spans over the
//!   simulator quantum loop, controller intervals, the refresh engine,
//!   and harness experiment stages. Feature-gated (`self-profile`) *and*
//!   runtime-filtered, so a disabled tracer costs one branch per site.
//! * **Export** — Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`) and a compact JSONL event log the offline
//!   `esteem-trace` analyzer consumes (see [`export`]).
//!
//! **Zero-cost-when-disabled contract.** A disabled tracer
//! ([`Tracer::off`], also `Default`) holds no allocation; every emit
//! site reduces to a `None` check and event construction is skipped
//! entirely (emission takes a closure). Tracing is a strictly read-only
//! tap: attaching a tracer must never change simulation results — the
//! golden-report tests in `esteem-harness` pin that down byte-for-byte.

pub mod event;
pub mod export;
pub mod filter;
pub mod prof;

pub use event::{EventKind, TraceEvent};
pub use filter::TraceFilter;
pub use prof::SpanGuard;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A destination for trace events. Implementations must be cheap per
/// record — the tracer already holds the lock when calling.
pub trait TraceSink: Send {
    fn record(&mut self, ev: TraceEvent);

    /// Events discarded so far (ring overflow); sinks that never drop
    /// report zero.
    fn dropped(&self) -> u64 {
        0
    }

    /// Takes every buffered event (oldest first). Streaming sinks that
    /// write through on record return nothing.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Copies the buffered events without consuming them (oldest
    /// first). The flight recorder uses this so a live inspection
    /// never steals events from the eventual post-run drain.
    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Flushes buffered output, surfacing any deferred I/O error.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Bounded drop-oldest ring buffer of events (the default sink).
///
/// Dropping the *oldest* events keeps the tail of the run — the part a
/// post-mortem usually cares about — and the drop count is reported so
/// an analyzer can state coverage honestly instead of silently
/// truncating.
#[derive(Debug)]
pub struct RingTracer {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTracer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            cap: capacity,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingTracer {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
}

/// Collects every event unboundedly (tests and short programmatic runs).
#[derive(Debug, Default)]
pub struct VecTraceSink {
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecTraceSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }
}

struct Shared {
    filter: TraceFilter,
    epoch: Instant,
    sink: Mutex<Box<dyn TraceSink>>,
}

/// A cheap, cloneable handle to a shared trace sink.
///
/// The disabled handle ([`Tracer::off`]) is a `None`: no allocation, and
/// every operation is a single branch. Enabled handles share one sink
/// behind a mutex — events are cold-path (interval/window granularity),
/// so contention is irrelevant, and a poisoned lock is recovered rather
/// than propagated (a tracer must never take down a sweep thread).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("on", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch per site.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// A tracer recording into `sink`, keeping only kinds `filter` allows.
    pub fn new(sink: Box<dyn TraceSink>, filter: TraceFilter) -> Self {
        Self {
            inner: Some(Arc::new(Shared {
                filter,
                epoch: Instant::now(),
                sink: Mutex::new(sink),
            })),
        }
    }

    /// Convenience: a [`RingTracer`]-backed tracer.
    pub fn ring(capacity: usize, filter: TraceFilter) -> Self {
        Self::new(Box::new(RingTracer::new(capacity)), filter)
    }

    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether events of `kind` are currently being recorded.
    #[inline]
    pub fn enabled(&self, kind: EventKind) -> bool {
        match &self.inner {
            None => false,
            Some(s) => s.filter.allows(kind),
        }
    }

    /// Records the event `build` produces, if `kind` is enabled. The
    /// closure runs only when the event will actually be kept, so emit
    /// sites pay nothing for construction when tracing is off.
    #[inline]
    pub fn emit(&self, kind: EventKind, build: impl FnOnce() -> TraceEvent) {
        if let Some(s) = &self.inner {
            if s.filter.allows(kind) {
                lock_sink(s).record(build());
            }
        }
    }

    /// Microseconds since this tracer was created (span timestamps).
    pub fn elapsed_us(&self) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(s) => s.epoch.elapsed().as_secs_f64() * 1e6,
        }
    }

    /// Opens a wall-clock profiling span; the returned guard records a
    /// [`TraceEvent::Span`] when dropped. With the `self-profile` feature
    /// off, or span events disabled, this is a no-op guard.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        prof::span(self, name)
    }

    /// Takes every buffered event from the sink (oldest first).
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(s) => lock_sink(s).drain(),
        }
    }

    /// Copies the buffered events without consuming them (oldest
    /// first) — a read-only tap for live inspection endpoints.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(s) => lock_sink(s).snapshot(),
        }
    }

    /// Events dropped by the sink so far.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => lock_sink(s).dropped(),
        }
    }

    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(s) => lock_sink(s).flush(),
        }
    }
}

fn lock_sink(s: &Shared) -> std::sync::MutexGuard<'_, Box<dyn TraceSink>> {
    // Poison recovery: a panicked thread elsewhere must not disable
    // tracing (the buffer is plain data, always consistent).
    s.sink.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh_ev(cycle: u64) -> TraceEvent {
        TraceEvent::RefreshBatch {
            cycle,
            refreshes: 1,
            invalidations: 0,
            pending: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_construction() {
        let t = Tracer::off();
        assert!(!t.is_on());
        let mut built = false;
        t.emit(EventKind::Refresh, || {
            built = true;
            refresh_ev(1)
        });
        assert!(!built, "construction must be skipped when off");
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.flush().is_ok());
    }

    #[test]
    fn filter_suppresses_disallowed_kinds() {
        let t = Tracer::ring(16, TraceFilter::none().with(EventKind::Reconfig));
        t.emit(EventKind::Refresh, || refresh_ev(5));
        t.emit(EventKind::Reconfig, || TraceEvent::ReconfigApply {
            cycle: 5,
            slot_transitions: 1,
            writebacks: 0,
            discards: 0,
        });
        let evs = t.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind(), EventKind::Reconfig);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::ring(3, TraceFilter::all());
        for c in 0..5 {
            t.emit(EventKind::Refresh, || refresh_ev(c));
        }
        assert_eq!(t.dropped(), 2);
        let evs = t.drain();
        assert_eq!(
            evs.iter().map(|e| e.cycle().unwrap()).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest events dropped first"
        );
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let t = Tracer::ring(8, TraceFilter::all());
        for c in 0..3 {
            t.emit(EventKind::Refresh, || refresh_ev(c));
        }
        assert_eq!(t.snapshot().len(), 3);
        assert_eq!(t.snapshot().len(), 3, "snapshot leaves the buffer intact");
        assert_eq!(t.drain().len(), 3, "drain still sees everything");
        assert!(t.snapshot().is_empty());
        assert!(Tracer::off().snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::ring(16, TraceFilter::all());
        let u = t.clone();
        t.emit(EventKind::Refresh, || refresh_ev(1));
        u.emit(EventKind::Refresh, || refresh_ev(2));
        assert_eq!(t.drain().len(), 2);
    }

    #[test]
    fn vec_sink_collects_unboundedly() {
        let t = Tracer::new(Box::new(VecTraceSink::default()), TraceFilter::all());
        for c in 0..100 {
            t.emit(EventKind::Refresh, || refresh_ev(c));
        }
        assert_eq!(t.drain().len(), 100);
        assert_eq!(t.dropped(), 0);
    }
}
