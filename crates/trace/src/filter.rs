//! Event-kind filtering (`--trace-filter reconfig,refresh`).

use crate::event::EventKind;

/// A set of [`EventKind`]s a tracer records. The check is one AND on a
/// byte, so filtering adds nothing measurable to the emit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter(u8);

impl Default for TraceFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl TraceFilter {
    pub const fn none() -> Self {
        TraceFilter(0)
    }

    pub fn all() -> Self {
        let mut f = TraceFilter(0);
        for k in EventKind::ALL {
            f = f.with(k);
        }
        f
    }

    #[must_use]
    pub fn with(self, kind: EventKind) -> Self {
        TraceFilter(self.0 | kind.bit())
    }

    #[must_use]
    pub fn without(self, kind: EventKind) -> Self {
        TraceFilter(self.0 & !kind.bit())
    }

    #[inline]
    pub fn allows(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated kind list (`"reconfig,refresh"`), or the
    /// specials `"all"` / `"none"`. Unknown names are an error naming the
    /// offender, so a typo'd CLI flag fails loudly instead of silently
    /// recording nothing.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "all" | "" => return Ok(Self::all()),
            "none" => return Ok(Self::none()),
            _ => {}
        }
        let mut f = TraceFilter::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match EventKind::parse(part) {
                Some(k) => f = f.with(k),
                None => {
                    return Err(format!(
                        "unknown trace event kind '{part}' (expected one of: {}, all, none)",
                        EventKind::ALL.map(|k| k.name()).join(", ")
                    ))
                }
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_allows_everything_none_nothing() {
        for k in EventKind::ALL {
            assert!(TraceFilter::all().allows(k));
            assert!(!TraceFilter::none().allows(k));
        }
    }

    #[test]
    fn with_without() {
        let f = TraceFilter::none()
            .with(EventKind::Reconfig)
            .with(EventKind::Span);
        assert!(f.allows(EventKind::Reconfig));
        assert!(f.allows(EventKind::Span));
        assert!(!f.allows(EventKind::Refresh));
        assert!(!f.without(EventKind::Span).allows(EventKind::Span));
    }

    #[test]
    fn parse_lists_and_specials() {
        assert_eq!(TraceFilter::parse("all").unwrap(), TraceFilter::all());
        assert_eq!(TraceFilter::parse("none").unwrap(), TraceFilter::none());
        let f = TraceFilter::parse("reconfig, refresh").unwrap();
        assert!(f.allows(EventKind::Reconfig));
        assert!(f.allows(EventKind::Refresh));
        assert!(!f.allows(EventKind::Bank));
        assert!(TraceFilter::parse("bogus").unwrap_err().contains("bogus"));
    }
}
