//! # ESTEEM — energy-saving reconfiguration for eDRAM caches
//!
//! Facade crate for the reproduction of *"Improving Energy Efficiency of
//! Embedded DRAM Caches for High-end Computing Systems"* (Mittal, Vetter,
//! Li — HPDC 2014). It re-exports the workspace crates so applications can
//! depend on a single `esteem` crate:
//!
//! * [`cache`] — set-associative cache model with per-module way masks and
//!   the embedded set-sampling profiler (ATD);
//! * [`edram`] — eDRAM retention, refresh policies (baseline periodic-all,
//!   periodic-valid, Refrint RPV/RPD) and the bank-contention model;
//! * [`mem`] — main-memory timing with bandwidth-derived queueing;
//! * [`workloads`] — synthetic statistical twins of the 29 SPEC CPU2006 +
//!   5 HPC benchmarks and the paper's 17 dual-core mixes;
//! * [`energy`] — the paper's §6.3 energy model and §6.4 metrics;
//! * [`stats`] — typed counters, the hierarchical stats registry with
//!   warm-up delta handling, and per-interval observers (JSONL logs);
//! * [`trace`] — ring-buffered event tracing, Perfetto export, and the
//!   offline analyzer;
//! * [`core`] — ESTEEM itself (Algorithm 1 + interval engine) and the
//!   multicore system simulator;
//! * [`par`] — deterministic order-preserving parallel sweeps and the
//!   long-lived worker pool behind the daemon;
//! * [`harness`] — regenerators for every table and figure;
//! * [`serve`] — the `esteem-serve` job daemon (HTTP API, bounded
//!   priority queue, run-cache dedupe, crash-safe journal) and its
//!   client library;
//! * [`cluster`] — the `esteem-coord` coordinator: shards sweeps across
//!   N `esteem-serve` workers by run-cache fingerprint over a
//!   consistent-hash ring, steals work from stragglers, re-dispatches
//!   off dead nodes, and merges per-node journals;
//! * [`check`] — the differential oracle checker (`esteem-check`): a
//!   naive reference model fuzzed in lockstep against the optimized
//!   cache/refresh stack, with case minimization and reproducer replay.
//!
//! ## Quickstart
//!
//! ```
//! use esteem::core::{Simulator, SystemConfig, Technique, AlgoParams};
//! use esteem::workloads::benchmark_by_name;
//!
//! let gamess = benchmark_by_name("gamess").unwrap();
//! let mut cfg = SystemConfig::paper_single_core(
//!     Technique::Esteem(AlgoParams::paper_single_core()));
//! cfg.sim_instructions = 1_000_000; // tiny demo run
//! cfg.warmup_cycles = 100_000;
//! let report = Simulator::single(cfg, &gamess).run();
//! assert!(report.energy.total() > 0.0);
//! ```

pub use esteem_cache as cache;
pub use esteem_check as check;
pub use esteem_cluster as cluster;
pub use esteem_core as core;
pub use esteem_edram as edram;
pub use esteem_energy as energy;
pub use esteem_harness as harness;
pub use esteem_mem as mem;
pub use esteem_par as par;
pub use esteem_serve as serve;
pub use esteem_stats as stats;
pub use esteem_trace as trace;
pub use esteem_workloads as workloads;
