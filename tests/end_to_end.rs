//! Cross-crate integration tests: whole-system simulations exercising the
//! paper's central claims at reduced scale.

use esteem::core::{run_comparison, AlgoParams, Simulator, SystemConfig, Technique};
use esteem::edram::RetentionSpec;
use esteem::workloads::{benchmark_by_name, mixes::mix_by_acronym};

const INSTRS: u64 = 3_000_000;

fn quick_cfg(t: Technique) -> SystemConfig {
    let mut cfg = SystemConfig::paper_single_core(t);
    cfg.sim_instructions = INSTRS;
    cfg.warmup_cycles = 2_200_000;
    cfg
}

fn quick_algo() -> AlgoParams {
    AlgoParams {
        interval_cycles: 500_000,
        ..AlgoParams::paper_single_core()
    }
}

/// Central claim: ESTEEM saves energy AND improves performance on a
/// cache-resident workload, beating RPV on both.
#[test]
fn esteem_beats_rpv_on_cache_resident_workload() {
    let p = benchmark_by_name("gamess").unwrap();
    let est = run_comparison(
        quick_cfg,
        Technique::Esteem(quick_algo()),
        std::slice::from_ref(&p),
        "gamess",
    );
    let rpv = run_comparison(
        quick_cfg,
        Technique::Rpv,
        std::slice::from_ref(&p),
        "gamess",
    );
    assert!(
        est.energy_saving_pct > rpv.energy_saving_pct,
        "ESTEEM {:.1}% must beat RPV {:.1}%",
        est.energy_saving_pct,
        rpv.energy_saving_pct
    );
    assert!(est.energy_saving_pct > 30.0, "{:.1}", est.energy_saving_pct);
    assert!(est.weighted_speedup > 1.0, "{}", est.weighted_speedup);
    assert!(est.rpki_decrease > rpv.rpki_decrease);
    assert!(est.active_ratio < 0.5);
    assert!(
        (rpv.active_ratio - 1.0).abs() < 1e-12,
        "RPV never turns off"
    );
}

/// The non-LRU guard keeps nearly all ways on for scanning workloads.
/// (Needs paper-like interval lengths: the anomaly detector works on the
/// per-interval ATD histogram, which is too sparse at tiny intervals.)
#[test]
fn non_lru_guard_protects_omnetpp() {
    let p = benchmark_by_name("omnetpp").unwrap();
    let mk = |t: Technique| {
        let mut cfg = SystemConfig::paper_single_core(t);
        cfg.sim_instructions = 4_000_000;
        cfg.warmup_cycles = 32_000_000;
        cfg
    };
    // The paper's 10M-cycle interval: the anomaly detector needs that much
    // ATD data per decision to be reliable.
    let algo = AlgoParams::paper_single_core();
    let est = run_comparison(
        mk,
        Technique::Esteem(algo),
        std::slice::from_ref(&p),
        "omnetpp",
    );
    let libq = benchmark_by_name("libquantum").unwrap();
    let stream = run_comparison(
        mk,
        Technique::Esteem(algo),
        std::slice::from_ref(&libq),
        "libquantum",
    );
    assert!(
        est.active_ratio > 0.70,
        "guard should keep most ways on for omnetpp, got {:.2}",
        est.active_ratio
    );
    assert!(
        est.active_ratio > stream.active_ratio + 0.3,
        "non-LRU app must stay far more active than a streaming app \
         (omnetpp {:.2} vs libquantum {:.2})",
        est.active_ratio,
        stream.active_ratio
    );
}

/// Streaming workloads get aggressive turn-off without a miss explosion.
#[test]
fn streaming_workload_aggressive_turnoff() {
    let p = benchmark_by_name("libquantum").unwrap();
    let est = run_comparison(
        quick_cfg,
        Technique::Esteem(quick_algo()),
        std::slice::from_ref(&p),
        "libquantum",
    );
    assert!(est.active_ratio < 0.45, "got {:.2}", est.active_ratio);
    assert!(est.mpki_increase < 2.0, "got {:.2}", est.mpki_increase);
}

/// Shorter retention -> more baseline refreshes -> larger ESTEEM benefit
/// (paper §7.3).
#[test]
fn lower_retention_increases_benefit() {
    let p = benchmark_by_name("gobmk").unwrap();
    let at = |us: f64| {
        let mk = move |t: Technique| {
            let mut cfg = quick_cfg(t);
            cfg.retention = RetentionSpec::from_micros(us, 2.0);
            cfg
        };
        run_comparison(
            mk,
            Technique::Esteem(quick_algo()),
            std::slice::from_ref(&p),
            "gobmk",
        )
    };
    let r50 = at(50.0);
    let r40 = at(40.0);
    assert!(
        r40.energy_saving_pct > r50.energy_saving_pct,
        "40us {:.1}% should beat 50us {:.1}%",
        r40.energy_saving_pct,
        r50.energy_saving_pct
    );
    assert!(r40.weighted_speedup >= r50.weighted_speedup * 0.98);
    // Baseline refresh volume grows as retention shrinks.
    assert!(r40.base.refreshes > r50.base.refreshes);
}

/// Dual-core: both cores reach their targets, weighted and fair speedups
/// are computed, and ESTEEM saves energy on the best-case mix.
#[test]
fn dual_core_mix_gkne() {
    let mix = mix_by_acronym("GkNe").unwrap();
    let profiles = [mix.a.clone(), mix.b.clone()];
    let mk = |t: Technique| {
        let mut cfg = SystemConfig::paper_dual_core(t);
        cfg.sim_instructions = INSTRS;
        cfg.warmup_cycles = 2_200_000;
        cfg
    };
    let algo = AlgoParams {
        interval_cycles: 500_000,
        ..AlgoParams::paper_dual_core()
    };
    let cmp = run_comparison(mk, Technique::Esteem(algo), &profiles, "GkNe");
    assert_eq!(cmp.base.per_core.len(), 2);
    assert!(cmp.energy_saving_pct > 20.0, "{:.1}", cmp.energy_saving_pct);
    assert!(cmp.weighted_speedup > 1.1, "{:.3}", cmp.weighted_speedup);
    assert!(cmp.fair_speedup > 1.0);
    // The paper's fairness check: FS close to WS.
    assert!((cmp.fair_speedup - cmp.weighted_speedup).abs() < 0.25);
}

/// Bit-exact determinism across repeated runs, including dual-core.
#[test]
fn deterministic_end_to_end() {
    let mix = mix_by_acronym("LqPo").unwrap();
    let profiles = [mix.a.clone(), mix.b.clone()];
    let mk = || {
        let mut cfg = SystemConfig::paper_dual_core(Technique::Rpv);
        cfg.sim_instructions = 500_000;
        cfg.warmup_cycles = 200_000;
        cfg
    };
    let a = Simulator::new(mk(), &profiles, "LqPo").run();
    let b = Simulator::new(mk(), &profiles, "LqPo").run();
    assert_eq!(a, b);
}

/// Energy accounting is internally consistent: component sums equal the
/// total, and percentages derive from the same totals.
#[test]
fn energy_accounting_consistency() {
    let p = benchmark_by_name("milc").unwrap();
    let r = Simulator::single(quick_cfg(Technique::Baseline), &p).run();
    let e = &r.energy;
    let sum = e.l2_leakage + e.l2_dynamic + e.l2_refresh + e.mm_leakage + e.mm_dynamic + e.algo;
    assert!((sum - e.total()).abs() < 1e-12);
    assert!(e.l2_refresh > 0.0 && e.mm_dynamic > 0.0);
    // Baseline refresh power at 50us must be ~0.278 W for a 4MB L2
    // (65536 lines x 0.212 nJ / 50 us) — the §1 "refresh dominates" check.
    let refresh_w = e.l2_refresh / r.inputs.seconds;
    assert!(
        (refresh_w - 0.278).abs() < 0.01,
        "baseline refresh power {refresh_w:.3} W off the analytic value"
    );
}

/// RPD (extension) trades refreshes for invalidations.
#[test]
fn rpd_invalidate_tradeoff() {
    let p = benchmark_by_name("hmmer").unwrap();
    let rpv = Simulator::single(quick_cfg(Technique::Rpv), &p).run();
    let rpd = Simulator::single(quick_cfg(Technique::Rpd), &p).run();
    assert!(rpd.refreshes < rpv.refreshes, "RPD must refresh less");
    assert!(rpd.refresh_invalidations > 0);
    assert_eq!(rpv.refresh_invalidations, 0);
}
