//! Validation of the synthetic workload twins against the behavioural
//! classes they imitate, using the reuse-distance analyzer — the checks a
//! reviewer would run before trusting the substitution (DESIGN.md §3).

use esteem::workloads::{benchmark_by_name, AccessStream, ReuseDistance};

const SAMPLE: usize = 150_000;

fn profile_of(name: &str) -> ReuseDistance {
    let p = benchmark_by_name(name).unwrap();
    let mut s = AccessStream::new(&p, 0, 11);
    let mut rd = ReuseDistance::new(1 << 15);
    for _ in 0..SAMPLE {
        rd.access(s.next_bundle().mem.block);
    }
    rd
}

/// Footprints order by working-set class: cache-resident < moderate <
/// huge.
#[test]
fn footprints_order_by_class() {
    let gamess = profile_of("gamess").footprint();
    let bzip2 = profile_of("bzip2").footprint();
    let mcf = profile_of("mcf").footprint();
    assert!(
        gamess < bzip2 && bzip2 < mcf,
        "footprints out of order: gamess {gamess}, bzip2 {bzip2}, mcf {mcf}"
    );
}

/// Cache-resident apps enjoy near-perfect hit ratios at L1 capacity;
/// streaming apps do not reuse at any small capacity.
#[test]
fn l1_scale_hit_ratios_separate_classes() {
    let l1_blocks = 512; // 32 KB
    let resident = profile_of("povray").lru_hit_ratio(l1_blocks);
    let streaming = profile_of("libquantum").lru_hit_ratio(l1_blocks);
    assert!(resident > 0.9, "povray L1-scale hit ratio {resident:.3}");
    assert!(
        streaming < resident,
        "libquantum ({streaming:.3}) should reuse less than povray ({resident:.3})"
    );
}

/// Streaming benchmarks generate a steady stream of cold (compulsory)
/// misses; cache-resident ones barely any after warmup.
#[test]
fn cold_miss_rates_separate_streaming() {
    let lbm = profile_of("lbm");
    let tonto = profile_of("tonto");
    let lbm_cold = lbm.cold_accesses() as f64 / lbm.total_accesses() as f64;
    let tonto_cold = tonto.cold_accesses() as f64 / tonto.total_accesses() as f64;
    assert!(
        lbm_cold > 5.0 * tonto_cold,
        "lbm cold {lbm_cold:.4} vs tonto cold {tonto_cold:.4}"
    );
}

/// The non-LRU scan component puts substantial reuse mass at *deep*
/// distances (beyond 4k blocks) where LRU-friendly moderates have little.
#[test]
fn scan_apps_have_deep_reuse_mass() {
    let om = profile_of("omnetpp");
    let dl = profile_of("dealII");
    let deep_mass = |rd: &ReuseDistance| {
        let h = rd.histogram();
        let deep: u64 = h[4096..].iter().sum();
        deep as f64 / rd.total_accesses() as f64
    };
    let om_deep = deep_mass(&om);
    let dl_deep = deep_mass(&dl);
    assert!(
        om_deep > 2.0 * dl_deep,
        "omnetpp deep-reuse {om_deep:.4} vs dealII {dl_deep:.4}"
    );
}

/// Trace round trip at the facade level: a recorded stream replays into
/// the identical reuse-distance histogram.
#[test]
fn trace_round_trip_preserves_locality() {
    use esteem::workloads::trace::{record_stream, TraceReader};
    let p = benchmark_by_name("gcc").unwrap();
    let mut s = AccessStream::new(&p, 0, 5);
    let img = record_stream(&mut s, 30_000);
    let mut replay = TraceReader::parse(&img).unwrap();

    let mut direct = AccessStream::new(&p, 0, 5);
    let mut rd_direct = ReuseDistance::new(1 << 12);
    let mut rd_replay = ReuseDistance::new(1 << 12);
    for _ in 0..30_000 {
        rd_direct.access(direct.next_bundle().mem.block);
        rd_replay.access(replay.next_bundle().mem.block);
    }
    assert_eq!(rd_direct.histogram(), rd_replay.histogram());
    assert_eq!(rd_direct.footprint(), rd_replay.footprint());
}
