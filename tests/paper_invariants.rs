//! Property-based integration tests of system-level invariants, plus
//! checks pinning the implementation to the paper's worked examples.

use esteem::core::esteem::algorithm1;
use esteem::core::{Simulator, SystemConfig, Technique};
use esteem::workloads::{all_benchmarks, benchmark_by_name};
use proptest::prelude::*;

/// Paper §3.1 worked example, end to end through the public API.
#[test]
fn paper_worked_example_via_facade() {
    let hits = [10816u64, 4645, 2140, 501, 217, 113, 63, 11];
    assert_eq!(algorithm1(&hits, 0.97, 1, true), 4);
    assert_eq!(algorithm1(&hits, 0.95, 1, true), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 invariants over arbitrary histograms:
    /// * the decision is within [min(A_min, A), A];
    /// * it is monotone in alpha;
    /// * A_min never reduces the chosen way count.
    #[test]
    fn algorithm1_invariants(
        hits in proptest::collection::vec(0u64..100_000, 2..32),
        alpha_milli in 500u32..999,
        a_min in 1u8..8,
    ) {
        let alpha = f64::from(alpha_milli) / 1000.0;
        let a = hits.len() as u8;
        let d = algorithm1(&hits, alpha, a_min, true);
        prop_assert!(d >= 1 && d <= a.max(a_min));
        prop_assert!(d >= a_min.min(a) || d == a - 1 || d == a);
        // Monotone in alpha.
        let d_hi = algorithm1(&hits, (alpha + 0.999) / 2.0, a_min, true);
        prop_assert!(d_hi >= d, "alpha monotonicity violated: {d_hi} < {d}");
        // A_min floor.
        let d_floor = algorithm1(&hits, alpha, 1, true);
        prop_assert!(d >= d_floor);
    }

    /// The counter-overhead formula (eq. 1) stays tiny over the whole
    /// configuration space the paper sweeps.
    #[test]
    fn overhead_stays_small(
        cap_log in 21u32..26,          // 2MB..32MB
        ways_log in 3u32..6,           // 8..32 ways
        modules_log in 1u32..7,        // 2..64 modules
    ) {
        let g = esteem::cache::CacheGeometry::from_capacity(
            1u64 << cap_log, 1 << ways_log, 64, 4, 1 << modules_log);
        let pct = g.esteem_counter_overhead_percent();
        prop_assert!(pct > 0.0 && pct < 1.5, "overhead {pct}% out of band");
    }
}

/// Every one of the 34 synthetic benchmarks runs end-to-end under every
/// technique without violating basic sanity (positive IPC, finite energy,
/// refreshes consistent with the policy).
#[test]
fn every_benchmark_runs_under_every_technique() {
    let algo = esteem::core::AlgoParams {
        interval_cycles: 250_000,
        ..esteem::core::AlgoParams::paper_single_core()
    };
    for b in all_benchmarks() {
        for t in [Technique::Baseline, Technique::Rpv, Technique::Esteem(algo)] {
            let mut cfg = SystemConfig::paper_single_core(t);
            cfg.sim_instructions = 400_000;
            cfg.warmup_cycles = 150_000;
            let r = Simulator::single(cfg, &b).run();
            assert!(
                r.per_core[0].ipc > 0.01 && r.per_core[0].ipc < 4.0,
                "{} under {}: IPC {} out of range",
                b.name,
                t.name(),
                r.per_core[0].ipc
            );
            assert!(r.energy.total().is_finite() && r.energy.total() > 0.0);
            match t {
                Technique::Baseline => assert!(r.refreshes > 0),
                Technique::Rpv => assert!(r.refresh_invalidations == 0),
                _ => {}
            }
            assert!(r.active_ratio > 0.0 && r.active_ratio <= 1.0);
        }
    }
}

/// The L2's valid-line accounting never drifts from a recount, even
/// through reconfiguration and refresh-driven invalidations (RPD).
#[test]
fn valid_line_accounting_through_reconfig_and_rpd() {
    use esteem::cache::{CacheGeometry, SetAssocCache};
    use esteem::edram::{RefreshEngine, RefreshPolicy, RetentionSpec};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let g = CacheGeometry::from_capacity(256 << 10, 8, 64, 4, 4);
    let mut cache = SetAssocCache::new(g, Some(16));
    let mut eng = RefreshEngine::new(
        RefreshPolicy::RPD,
        RetentionSpec {
            period_cycles: 4000,
        },
        &cache,
    );
    let mut rng = SmallRng::seed_from_u64(99);
    let mut cycle = 0u64;
    for step in 0..30_000u64 {
        cycle += rng.gen_range(1..4);
        let out = cache.access(rng.gen_range(0..20_000), rng.gen_bool(0.3), cycle);
        eng.on_access(&out, cycle);
        if step % 1000 == 999 {
            eng.advance(&mut cache, cycle);
            let m = (step / 1000 % 4) as u16;
            let ways = rng.gen_range(2..=8);
            cache.set_module_active_ways(m, ways, cycle);
            assert_eq!(
                cache.valid_lines(),
                cache.recount_valid(),
                "valid-line accounting drifted at step {step}"
            );
            let per_bank: u64 = cache.valid_lines_per_bank().iter().sum();
            assert_eq!(per_bank, cache.valid_lines());
        }
    }
    assert!(eng.total_invalidations() > 0, "RPD should have invalidated");
}

/// Changing the seed changes the details but not the qualitative class
/// behaviour (cache-resident apps keep tiny active ratios).
#[test]
fn seed_robustness_of_class_behaviour() {
    let p = benchmark_by_name("povray").unwrap();
    for seed in [1u64, 7, 42] {
        let mut cfg =
            SystemConfig::paper_single_core(Technique::Esteem(esteem::core::AlgoParams {
                interval_cycles: 300_000,
                ..esteem::core::AlgoParams::paper_single_core()
            }));
        cfg.sim_instructions = 1_500_000;
        cfg.warmup_cycles = 1_400_000;
        cfg.seed = seed;
        let r = Simulator::single(cfg, &p).run();
        assert!(
            r.active_ratio < 0.5,
            "seed {seed}: active ratio {:.2} unexpectedly high",
            r.active_ratio
        );
    }
}
