#!/usr/bin/env python3
"""Validate the daemon's /metrics exposition text.

Reads the exposition from a file argument (or stdin) and checks the
grammar the ESTEEM stack emits — `path value` lines where the path may
carry a `{key="value",...}` label block — plus the histogram invariants:

  * every line parses: path, optional label block, one numeric value;
  * label values use only the supported escapes (\\\\, \\", \\n);
  * every `<base>_bucket` family has a `+Inf` bucket, its cumulative
    counts are monotonically non-decreasing in `le`, and the `+Inf`
    count equals the `<base>_count` line;
  * every histogram family has a `<base>_sum` line.

Exits 0 when the exposition is well-formed, 1 with a line-numbered
complaint otherwise. Used by the CI smoke-serve job against a live
daemon; `cargo test` covers the same rendering at the unit level.
"""

import re
import sys
from collections import defaultdict

LINE_RE = re.compile(
    r"^(?P<path>[A-Za-z0-9_:/.\-]+)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|inf|NaN))$"
)
# One label: key="..." with only \\ \" \n escapes inside the quotes.
LABEL_RE = re.compile(r'([A-Za-z0-9_]+)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"')


def parse_labels(raw, lineno, errors):
    """Split a label block into a dict, validating the escape grammar."""
    labels = {}
    rest = raw
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            errors.append(f"line {lineno}: bad label block near {rest!r}")
            return labels
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: junk after label near {rest!r}")
            return labels
    return labels


def main():
    if len(sys.argv) > 1:
        text = open(sys.argv[1], encoding="utf-8").read()
    else:
        text = sys.stdin.read()

    errors = []
    # family key: (base path, frozenset of non-le labels) -> [(le, count)]
    buckets = defaultdict(list)
    scalars = {}  # full path with labels -> value

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        m = LINE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable: {line!r}")
            continue
        path, raw_labels, value = m.group("path"), m.group("labels"), m.group("value")
        labels = parse_labels(raw_labels, lineno, errors) if raw_labels is not None else {}
        val = float(value)
        if path.endswith("_bucket") and "le" in labels:
            le = labels.pop("le")
            key = (path[: -len("_bucket")], frozenset(labels.items()))
            buckets[key].append((lineno, le, val))
        else:
            key = path + (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            scalars[key] = val

    def scalar(base, labels):
        key = base + (
            "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels)) + "}"
            if labels
            else ""
        )
        return scalars.get(key)

    if not buckets:
        errors.append("no histogram bucket lines found (expected after serving a job)")

    for (base, labels), series in sorted(buckets.items()):
        finite = [(n, float(le), c) for (n, le, c) in series if le != "+Inf"]
        inf = [(n, c) for (n, le, c) in series if le == "+Inf"]
        if len(inf) != 1:
            errors.append(f"{base}: expected exactly one +Inf bucket, got {len(inf)}")
            continue
        if sorted(le for _, le, _ in finite) != [le for _, le, _ in finite]:
            errors.append(f"{base}: bucket les are not sorted ascending")
        counts = [c for _, _, c in finite] + [inf[0][1]]
        for a, b in zip(counts, counts[1:]):
            if b < a:
                errors.append(f"{base}: cumulative counts decrease ({a} -> {b})")
                break
        count_line = scalar(base + "_count", labels)
        if count_line is None:
            errors.append(f"{base}: missing _count line")
        elif count_line != inf[0][1]:
            errors.append(
                f"{base}: _count {count_line} != +Inf bucket {inf[0][1]}"
            )
        if scalar(base + "_sum", labels) is None:
            errors.append(f"{base}: missing _sum line")

    if errors:
        for e in errors:
            print(f"check_metrics_exposition: {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_metrics_exposition: OK "
        f"({len(scalars)} scalar lines, {len(buckets)} histogram families)"
    )


if __name__ == "__main__":
    main()
