#!/usr/bin/env bash
# Perf-regression smoke gate for the simulator hot path.
#
# Runs the full esteem-microbench suite and fails if end-to-end simulator
# throughput (`sim_minstr_per_s`) fell more than an allowed fraction below
# the committed reference in BENCH_hotpath.json, or if the per-event
# metrics tap (`histogram_record_ns`) got slower by more than the inverse
# margin — the tap guards every latency histogram in the daemon and the
# simulator, so a regression there taxes everything. The reference numbers are
# machine-dependent, so the gate is a *smoke* check with a generous margin:
# it catches "someone made the hot path 2x slower", not 3% drift. CI
# machines that are simply slower than the reference box can lower the bar
# via PERF_GATE_FRACTION (e.g. 0.5) without editing the workflow.
#
# Usage: scripts/perf_gate.sh [path-to-reference.json]
#   PERF_GATE_FRACTION  minimum allowed fresh/committed ratio (default 0.85)
set -euo pipefail
cd "$(dirname "$0")/.."

ref="${1:-BENCH_hotpath.json}"
fraction="${PERF_GATE_FRACTION:-0.85}"
fresh="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

extract() { # extract <file> <key>  -> numeric value
  sed -n "s/.*\"$2\": *\([0-9.]*\).*/\1/p" "$1" | head -n1
}

committed="$(extract "$ref" sim_minstr_per_s)"
if [ -z "$committed" ]; then
  echo "perf gate: no sim_minstr_per_s in $ref" >&2
  exit 2
fi

cargo build --release -p esteem-harness --bin esteem-microbench
./target/release/esteem-microbench --out "$fresh" >/dev/null
measured="$(extract "$fresh" sim_minstr_per_s)"
if [ -z "$measured" ]; then
  echo "perf gate: microbench produced no sim_minstr_per_s" >&2
  exit 2
fi

floor="$(awk -v c="$committed" -v f="$fraction" 'BEGIN { printf "%.2f", c * f }')"
echo "perf gate: committed ${committed} Minstr/s, measured ${measured}, floor ${floor} (fraction ${fraction})"
awk -v m="$measured" -v fl="$floor" 'BEGIN { exit !(m + 0 >= fl + 0) }' || {
  echo "perf gate: FAIL — sim_minstr_per_s ${measured} < ${floor}" >&2
  echo "           (regenerate BENCH_hotpath.json if the slowdown is intended)" >&2
  exit 1
}

# Histogram record cost: lower is better, so the ceiling is the committed
# value divided by the same fraction. Skipped against reference files that
# predate the key.
committed_hist="$(extract "$ref" histogram_record_ns)"
if [ -n "$committed_hist" ]; then
  measured_hist="$(extract "$fresh" histogram_record_ns)"
  if [ -z "$measured_hist" ]; then
    echo "perf gate: microbench produced no histogram_record_ns" >&2
    exit 2
  fi
  ceiling="$(awk -v c="$committed_hist" -v f="$fraction" 'BEGIN { printf "%.2f", c / f }')"
  echo "perf gate: committed ${committed_hist} ns/record, measured ${measured_hist}, ceiling ${ceiling}"
  awk -v m="$measured_hist" -v cl="$ceiling" 'BEGIN { exit !(m + 0 <= cl + 0) }' || {
    echo "perf gate: FAIL — histogram_record_ns ${measured_hist} > ${ceiling}" >&2
    echo "           (regenerate BENCH_hotpath.json if the slowdown is intended)" >&2
    exit 1
  }
else
  echo "perf gate: reference has no histogram_record_ns; skipping that check"
fi
echo "perf gate: OK"
