#!/usr/bin/env bash
# Perf-regression smoke gate for the simulator hot path.
#
# Runs the full esteem-microbench suite and fails if end-to-end simulator
# throughput (`sim_minstr_per_s`) fell more than an allowed fraction below
# the committed reference in BENCH_hotpath.json, or if the per-event
# metrics tap (`histogram_record_ns`) got slower by more than the inverse
# margin — the tap guards every latency histogram in the daemon and the
# simulator, so a regression there taxes everything. The reference numbers are
# machine-dependent, so the gate is a *smoke* check with a generous margin:
# it catches "someone made the hot path 2x slower", not 3% drift. CI
# machines that are simply slower than the reference box can lower the bar
# via PERF_GATE_FRACTION (e.g. 0.5) without editing the workflow.
#
# Usage: scripts/perf_gate.sh [path-to-reference.json]
#   PERF_GATE_FRACTION  minimum allowed fresh/committed ratio (default 0.85)
set -euo pipefail
cd "$(dirname "$0")/.."

ref="${1:-BENCH_hotpath.json}"
fraction="${PERF_GATE_FRACTION:-0.85}"
fresh="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

extract() { # extract <file> <key>  -> numeric value
  sed -n "s/.*\"$2\": *\([0-9.]*\).*/\1/p" "$1" | head -n1
}

committed="$(extract "$ref" sim_minstr_per_s)"
if [ -z "$committed" ]; then
  echo "perf gate: no sim_minstr_per_s in $ref" >&2
  exit 2
fi

cargo build --release -p esteem-harness --bin esteem-microbench
./target/release/esteem-microbench --out "$fresh" >/dev/null
measured="$(extract "$fresh" sim_minstr_per_s)"
if [ -z "$measured" ]; then
  echo "perf gate: microbench produced no sim_minstr_per_s" >&2
  exit 2
fi

floor="$(awk -v c="$committed" -v f="$fraction" 'BEGIN { printf "%.2f", c * f }')"
echo "perf gate: committed ${committed} Minstr/s, measured ${measured}, floor ${floor} (fraction ${fraction})"
awk -v m="$measured" -v fl="$floor" 'BEGIN { exit !(m + 0 >= fl + 0) }' || {
  echo "perf gate: FAIL — sim_minstr_per_s ${measured} < ${floor}" >&2
  echo "           (regenerate BENCH_hotpath.json if the slowdown is intended)" >&2
  exit 1
}

# Histogram record cost: lower is better, so the ceiling is the committed
# value divided by the same fraction. Skipped against reference files that
# predate the key.
committed_hist="$(extract "$ref" histogram_record_ns)"
if [ -n "$committed_hist" ]; then
  measured_hist="$(extract "$fresh" histogram_record_ns)"
  if [ -z "$measured_hist" ]; then
    echo "perf gate: microbench produced no histogram_record_ns" >&2
    exit 2
  fi
  ceiling="$(awk -v c="$committed_hist" -v f="$fraction" 'BEGIN { printf "%.2f", c / f }')"
  echo "perf gate: committed ${committed_hist} ns/record, measured ${measured_hist}, ceiling ${ceiling}"
  awk -v m="$measured_hist" -v cl="$ceiling" 'BEGIN { exit !(m + 0 <= cl + 0) }' || {
    echo "perf gate: FAIL — histogram_record_ns ${measured_hist} > ${ceiling}" >&2
    echo "           (regenerate BENCH_hotpath.json if the slowdown is intended)" >&2
    exit 1
  }
else
  echo "perf gate: reference has no histogram_record_ns; skipping that check"
fi

# Serving-path saturation: only gated once a BENCH_serve.json reference
# is committed. A short closed-loop sweep against an ephemeral daemon
# must stay within the same noise fraction of the committed saturation
# RPS — this catches "someone made the submit/queue/complete path 2x
# slower", which the simulator-side microbench cannot see.
serve_ref="BENCH_serve.json"
if [ -f "$serve_ref" ]; then
  committed_rps="$(extract "$serve_ref" saturation_rps)"
  if [ -z "$committed_rps" ]; then
    echo "perf gate: no saturation_rps in $serve_ref" >&2
    exit 2
  fi
  cargo build --release -p esteem-serve --bin esteem-serve --bin esteem-loadgen
  serve_out="$(mktemp /tmp/perf_gate_serve.XXXXXX.out)"
  serve_fresh="$(mktemp /tmp/bench_serve_fresh.XXXXXX.json)"
  ./target/release/esteem-serve --addr 127.0.0.1:0 --workers 2 > "$serve_out" &
  serve_pid=$!
  trap 'rm -f "$fresh" "$serve_out" "$serve_fresh"; kill "$serve_pid" 2>/dev/null || true' EXIT
  for _ in $(seq 1 50); do
    grep -q "listening on " "$serve_out" && break
    sleep 0.2
  done
  addr="$(sed -n 's/^listening on //p' "$serve_out")"
  if [ -z "$addr" ]; then
    echo "perf gate: daemon did not come up" >&2
    exit 2
  fi
  ./target/release/esteem-loadgen --addr "$addr" --sweep 2,4,8 \
    --duration-s 2 --out "$serve_fresh" >/dev/null
  kill "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  measured_rps="$(extract "$serve_fresh" saturation_rps)"
  if [ -z "$measured_rps" ]; then
    echo "perf gate: loadgen sweep produced no saturation_rps" >&2
    exit 2
  fi
  floor_rps="$(awk -v c="$committed_rps" -v f="$fraction" 'BEGIN { printf "%.2f", c * f }')"
  echo "perf gate: committed ${committed_rps} RPS at saturation, measured ${measured_rps}, floor ${floor_rps}"
  awk -v m="$measured_rps" -v fl="$floor_rps" 'BEGIN { exit !(m + 0 >= fl + 0) }' || {
    echo "perf gate: FAIL — saturation_rps ${measured_rps} < ${floor_rps}" >&2
    echo "           (regenerate BENCH_serve.json if the slowdown is intended)" >&2
    exit 1
  }
else
  echo "perf gate: no BENCH_serve.json; skipping the serving-path check"
fi
echo "perf gate: OK"
