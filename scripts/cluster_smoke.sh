#!/usr/bin/env bash
# End-to-end smoke test of the cluster fabric (DESIGN.md §17).
#
# Scenario: coordinator + 2 workers on ephemeral localhost ports; a
# 48-cell sweep; one worker SIGKILLed mid-sweep. Asserts that
#
#   * the sweep still completes with zero failed cells,
#   * the coordinator observed the node failure and re-dispatched work,
#   * the merged sweep report is byte-identical to the same cells run
#     single-node through `esteem-sim --json`,
#   * a re-submitted cell is served from the surviving worker's run
#     cache and counted in the coordinator's /metrics,
#   * per-worker journals merge without done/failed conflicts,
#   * the surviving worker deregisters gracefully on shutdown.
#
# Usage: scripts/cluster_smoke.sh [bin-dir]
#   bin-dir   directory holding the release binaries
#             (default: target/release)
# Work files land in $CLUSTER_SMOKE_DIR (default: ./cluster-smoke).

set -euo pipefail

BIN=${1:-target/release}
DIR=${CLUSTER_SMOKE_DIR:-cluster-smoke}
INSTR=200000
CELLS=48 # seeds 1..24 x techniques {baseline, esteem}

for exe in esteem-coord esteem-serve esteem-client esteem-sim; do
    if [ ! -x "$BIN/$exe" ]; then
        echo "missing $BIN/$exe (build with: cargo build --release --bins)" >&2
        exit 1
    fi
done

rm -rf "$DIR"
mkdir -p "$DIR"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

# Polls "$@" (a command) until it succeeds or ~20 s elapse.
wait_for() {
    local what=$1
    shift
    for _ in $(seq 1 100); do
        if "$@" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "timed out waiting for $what" >&2
    return 1
}

# Extracts the ephemeral address from a daemon's stdout log.
addr_of() {
    sed -n 's/^listening on //p' "$1"
}

echo "== start coordinator + 2 workers (ephemeral ports)"
"$BIN/esteem-coord" --addr 127.0.0.1:0 --heartbeat-timeout-ms 1000 \
    --journal "$DIR/coord.jsonl" >"$DIR/coord.out" &
PIDS+=($!)
COORD_PID=$!
wait_for "coordinator banner" grep -q "listening on " "$DIR/coord.out"
COORD=$(addr_of "$DIR/coord.out")

"$BIN/esteem-serve" --addr 127.0.0.1:0 --workers 2 --node-id w1 \
    --coordinator "$COORD" --heartbeat-ms 200 \
    --journal "$DIR/w1.jsonl" >"$DIR/w1.out" &
PIDS+=($!)
"$BIN/esteem-serve" --addr 127.0.0.1:0 --workers 2 --node-id w2 \
    --coordinator "$COORD" --heartbeat-ms 200 \
    --journal "$DIR/w2.jsonl" >"$DIR/w2.out" &
PIDS+=($!)
W2_PID=$!
wait_for "worker banners" grep -q "listening on " "$DIR/w1.out"
wait_for "worker banners" grep -q "listening on " "$DIR/w2.out"
W1=$(addr_of "$DIR/w1.out")

members() { "$BIN/esteem-client" "$COORD" get /v1/cluster; }
wait_for "w1 to register" sh -c "'$BIN/esteem-client' '$COORD' get /v1/cluster | grep -q '\"w1\"'"
wait_for "w2 to register" sh -c "'$BIN/esteem-client' '$COORD' get /v1/cluster | grep -q '\"w2\"'"
echo "coordinator $COORD, workers registered:"
members

echo "== submit a $CELLS-cell sweep"
"$BIN/esteem-client" "$COORD" sweep gamess --instructions "$INSTR" \
    --grid "seed=$(seq -s, 1 24)" --grid technique=baseline,esteem |
    tee "$DIR/sweep.out"
SWEEP=$(sed -n 's/^sweep \([0-9]*\).*/\1/p' "$DIR/sweep.out")
test -n "$SWEEP"

# Prints cluster/<name> from the coordinator's /metrics as an integer
# (gauges render as "3.0"; drop the fractional part).
metric() {
    "$BIN/esteem-client" "$COORD" metrics |
        awk -v k="cluster/$1" '$1 == k { sub(/\..*$/, "", $2); print $2 }'
}

# Polls until cluster/<name> >= <want> (~30 s).
wait_metric_ge() {
    local name=$1 want=$2 v=
    for _ in $(seq 1 150); do
        v=$(metric "$name")
        if [ -n "$v" ] && [ "$v" -ge "$want" ]; then return 0; fi
        sleep 0.2
    done
    echo "timed out waiting for cluster/$name >= $want (last: ${v:-none})" >&2
    return 1
}

echo "== SIGKILL w2 once a few cells have finished"
wait_metric_ge jobs_done 3
kill -9 "$W2_PID"
echo "killed w2 (pid $W2_PID) at jobs_done=$(metric jobs_done)"

echo "== sweep must still complete; stream the merged report"
"$BIN/esteem-client" "$COORD" sweep-report "$SWEEP" --wait \
    >"$DIR/via_cluster.json"

FAILURES=$(metric node_failures)
REDISPATCHED=$(metric jobs_redispatched)
echo "node_failures=$FAILURES jobs_redispatched=$REDISPATCHED"
[ "$FAILURES" -ge 1 ] || {
    echo "coordinator never declared w2 dead" >&2
    exit 1
}
[ "$REDISPATCHED" -ge 1 ] || {
    echo "no jobs were re-dispatched off the dead worker" >&2
    exit 1
}
[ "$(metric jobs_failed)" -eq 0 ] || {
    echo "sweep had failed cells" >&2
    exit 1
}

echo "== report must be byte-identical to single-node esteem-sim runs"
: >"$DIR/via_cli.json"
for seed in $(seq 1 24); do
    for tech in baseline esteem; do
        "$BIN/esteem-sim" --technique "$tech" --instructions "$INSTR" \
            --seed "$seed" --json gamess >>"$DIR/via_cli.json"
    done
done
diff "$DIR/via_cluster.json" "$DIR/via_cli.json"
echo "byte-identical across $CELLS cells"

echo "== a re-submitted cell is served from the worker's run cache"
for _ in 1 2; do
    "$BIN/esteem-client" "$COORD" submit --instructions "$INSTR" \
        --technique esteem --seed 1 gamess | tee "$DIR/resubmit.out"
    JOB=$(sed -n 's/^job \([0-9]*\).*/\1/p' "$DIR/resubmit.out")
    "$BIN/esteem-client" "$COORD" fetch "$JOB" >/dev/null
done
CACHED=$(metric jobs_cached_on_worker)
echo "jobs_cached_on_worker=$CACHED"
[ "$CACHED" -ge 1 ] || {
    echo "re-submitted cell missed the worker run cache" >&2
    exit 1
}

echo "== per-worker journals merge without conflicts"
"$BIN/esteem-coord" merge w1="$DIR/w1.jsonl" w2="$DIR/w2.jsonl" \
    >"$DIR/merged-journal.json"
grep -q '"conflicts": \[\]' "$DIR/merged-journal.json"

echo "== graceful drain: w1 deregisters, coordinator exits"
"$BIN/esteem-client" "$W1" shutdown
wait_metric_ge deregistrations 1
"$BIN/esteem-client" "$COORD" shutdown
wait_for "coordinator exit" sh -c "! kill -0 $COORD_PID 2>/dev/null"

echo "cluster smoke: OK"
