//! Vendored minimal stand-in for `rand` 0.8, built for offline
//! compilation. Implements the exact surface this workspace uses:
//!
//! - [`rngs::SmallRng`] — xoshiro256++ (the same algorithm real
//!   rand 0.8 uses for `SmallRng` on 64-bit targets), seeded from a
//!   `u64` via SplitMix64 exactly like `SeedableRng::seed_from_u64`;
//! - [`Rng::gen`] for `f64`/`f32`/`u64`/`u32`/`bool` (rand's
//!   `Standard` distribution semantics: floats uniform in `[0, 1)`
//!   from the high 53/24 bits);
//! - [`Rng::gen_bool`] and [`Rng::gen_range`] over integer
//!   `Range`/`RangeInclusive`.
//!
//! Streams are deterministic given a seed, which is all the simulator
//! requires; they are NOT bit-identical to the real crate's
//! `gen_range` (which uses a different uniform-int scheme).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        // Match rand's xoshiro wrapper: take the high half.
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn from_offset(low: Self, offset: u64) -> Self;
    fn span(low: Self, high_exclusive: Self) -> u64;
    fn span_inclusive(low: Self, high: Self) -> Option<u64>;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_offset(low: Self, offset: u64) -> Self {
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            #[inline]
            fn span(low: Self, high_exclusive: Self) -> u64 {
                (high_exclusive as $wide).wrapping_sub(low as $wide) as u64
            }
            #[inline]
            fn span_inclusive(low: Self, high: Self) -> Option<u64> {
                ((high as $wide).wrapping_sub(low as $wide) as u64).checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (unbiased enough for simulation
/// seeds; NOT rejection-corrected).
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        // Full u64 range (only reachable via span_inclusive overflow).
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = T::span(self.start, self.end);
        T::from_offset(self.start, bounded(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty range");
        match T::span_inclusive(low, high) {
            Some(span) => T::from_offset(low, bounded(rng, span)),
            None => T::from_offset(low, rng.next_u64()),
        }
    }
}

pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::from_rng(self) < p
    }

    #[inline]
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on
    /// 64-bit platforms. Small, fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(2u8..=8);
            assert!((2..=8).contains(&w));
            seen_lo |= w == 2;
            seen_hi |= w == 8;
            let s: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 got {hits}/100000");
    }
}
