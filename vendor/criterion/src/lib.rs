//! Vendored minimal stand-in for `criterion`, built for offline
//! compilation. Keeps the workspace's bench targets compiling and
//! producing useful numbers: each benchmark is timed with
//! `std::time::Instant` over `sample_size` samples and reports
//! mean ns/iter (plus derived throughput when configured). There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.clone();
        run_benchmark(&id, &cfg, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_benchmark(&full, &cfg, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Total wall time accumulated by `iter*` calls in this sample.
    elapsed: Duration,
    /// Iterations executed in this sample.
    iterations: u64,
    /// Iterations to run per `iter*` call (set by the harness).
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let started = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.elapsed += started.elapsed();
        self.iterations += self.iters_per_sample;
    }

    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut f: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let started = Instant::now();
            black_box(f(input));
            self.elapsed += started.elapsed();
            self.iterations += 1;
        }
    }
}

fn run_benchmark<F>(id: &str, cfg: &Criterion, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent,
    // measuring the per-iteration cost to size the real samples.
    let warmup_started = Instant::now();
    let mut warmup_iters = 0u64;
    let mut warmup_elapsed = Duration::ZERO;
    while warmup_started.elapsed() < cfg.warm_up_time {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            iters_per_sample: 1,
        };
        f(&mut b);
        warmup_elapsed += b.elapsed;
        warmup_iters += b.iterations.max(1);
    }
    let per_iter = warmup_elapsed
        .checked_div(warmup_iters.max(1) as u32)
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));

    // Size samples so all of them together roughly fill measurement_time.
    let budget_per_sample = cfg.measurement_time.as_nanos() / cfg.sample_size.max(1) as u128;
    let iters_per_sample =
        (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            iters_per_sample,
        };
        f(&mut b);
        total += b.elapsed;
        iterations += b.iterations;
    }

    let ns_per_iter = total.as_nanos() as f64 / iterations.max(1) as f64;
    let mut line = format!("{id}: {ns_per_iter:.1} ns/iter ({iterations} iters)");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_s = n as f64 * 1e9 / ns_per_iter.max(f64::MIN_POSITIVE);
            line.push_str(&format!(", {per_s:.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) => {
            let per_s = n as f64 * 1e9 / ns_per_iter.max(f64::MIN_POSITIVE);
            line.push_str(&format!(", {:.1} MiB/s", per_s / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_throughput_and_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(3);
        group.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8, 2, 3], |v| v.len())
        });
        group.finish();
    }
}
