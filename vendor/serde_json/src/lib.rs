//! Vendored minimal `serde_json` stand-in for offline builds: compact
//! and pretty writers plus a recursive-descent parser, both over the
//! stand-in `serde::Value` tree. Covers the workspace surface:
//! `to_string`, `to_string_pretty`, `from_str`.
//!
//! Floats are written with Rust's shortest round-trip formatting
//! (`{:?}`), so `f64 -> JSON -> f64` is exact. Non-finite floats are
//! written as `null` (matching serde_json's lossy default behaviour).

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Debug formatting is Rust's shortest round-trip repr and
                // always includes a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let head = self.peek();
        match head {
            Some(b'n' | b't' | b'f') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_shortest_repr_roundtrips() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, -0.0, 123456.789012345] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn nested_pretty_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::I64(1), Value::Null])),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
