//! Vendored minimal stand-in for `serde`, built for offline compilation.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small serde surface it actually uses: the
//! `Serialize`/`Deserialize` traits (via a self-describing [`Value`]
//! tree instead of serde's visitor machinery) and the matching derive
//! macros in the companion `serde_derive` crate. The external
//! representation matches serde's defaults for the shapes this
//! workspace uses: named-field structs become maps, unit enum variants
//! become strings, newtype/tuple/struct variants become single-entry
//! maps (externally tagged).

/// Self-describing data tree: the intermediate form between typed
/// values and a concrete format (JSON lives in the `serde_json` crate).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also covers unsigned values <= i64::MAX when
    /// produced by the JSON parser).
    I64(i64),
    /// Unsigned integers above i64::MAX.
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects; struct fields).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a struct field in a map value; missing fields are an error
/// (this stand-in does not implement `#[serde(default)]`).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Deserialization error (shared by `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: u64 = match *v {
                    Value::I64(i) if i >= 0 => i as u64,
                    Value::U64(u) => u,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) if u <= i64::MAX as u64 => u as i64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(i) => Ok(i as f64),
            Value::U64(u) => Ok(u as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` deserialization leaks the parsed string. The only
/// user is `BenchmarkProfile` (interned benchmark names), parsed a
/// bounded number of times per process, so the leak is a few bytes.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(3u32).to_value(), Value::I64(3));
    }

    #[test]
    fn u64_above_i64_max() {
        let big = u64::MAX - 1;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v), Ok(big));
    }

    #[test]
    fn missing_field_reports_name() {
        let err = map_get(&[], "ipc").unwrap_err();
        assert!(err.to_string().contains("ipc"));
    }
}
