//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the stand-in `serde` crate. Written against `proc_macro` alone
//! (no syn/quote — the build environment is offline), so it supports
//! exactly the shapes this workspace derives on:
//!
//! - named-field structs (no generics, no tuple structs);
//! - enums with unit, tuple, and named-field variants.
//!
//! Representation matches serde's external tagging: structs are maps,
//! unit variants are strings, newtype variants are `{name: value}`,
//! tuple variants are `{name: [values]}`, struct variants are
//! `{name: {fields}}`. `#[serde(...)]` attributes are not supported
//! (none exist in this workspace) and are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Consumes leading attributes (`#[...]`, including doc comments) and
/// visibility qualifiers from `toks[*i]`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Splits a field-list token stream on top-level commas, tracking angle
/// brackets (`<`/`>` are plain puncts, unlike delimiter groups).
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from a named-field list (`a: T, pub b: U, ...`).
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    split_top_level_commas(&toks)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0usize;
            skip_attrs_and_vis(&seg, &mut i);
            expect_ident(&seg, &mut i, "field name")
        })
        .collect()
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    split_top_level_commas(&toks)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0usize;
            skip_attrs_and_vis(&seg, &mut i);
            let name = expect_ident(&seg, &mut i, "variant name");
            let kind = match seg.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Tuple(
                        split_top_level_commas(&inner)
                            .into_iter()
                            .filter(|s| !s.is_empty())
                            .count(),
                    )
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("serde_derive: unsupported variant shape: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);
    let keyword = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "type name");
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive ({name})");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: only named-field structs and enums are supported ({name}: {other:?})"
        ),
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: unexpected item `{other}`"),
    };
    Input { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__seq[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                                     if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}::{vn}\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                gets.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __m = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     return match __s.as_str() {{\n\
                         {}\n\
                         _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\")),\n\
                     }};\n\
                 }}\n\
                 if let ::serde::Value::Map(__entries) = __v {{\n\
                     if __entries.len() == 1 {{\n\
                         let (__k, __inner) = &__entries[0];\n\
                         return match __k.as_str() {{\n\
                             {}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\")),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\"invalid enum value for {name}\"))",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
