//! Vendored minimal stand-in for `proptest`, built for offline
//! compilation. Supports the surface this workspace uses:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`
//! - strategies: integer ranges, `any::<bool>()`, tuples (2/3-ary),
//!   `.prop_map`, `prop_oneof![weight => strat, ...]`,
//!   `proptest::collection::vec(strat, size_range)`;
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is deterministic: the RNG seed is derived from the test
//! function's name, so failures reproduce across runs. There is no
//! shrinking — a failing case reports its index and message only.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test RNG (seeded from the test name).
    pub struct TestRng(SmallRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name keeps runs reproducible.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A failed property (no shrinking: message + originating case).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite quick
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// Value-generation strategy. Object safe: `prop_map`/`boxed` are
    /// `where Self: Sized` so `Box<dyn Strategy<Value = V>>` works.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Type-erased strategy (cloneable so `prop_oneof!` arms can be
    /// reused across cases).
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum mismatch")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` support (only `bool` is used in this workspace,
    /// but integers come for free via full ranges).
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        A(u64),
        B(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            3 => (0u64..100, any::<bool>()).prop_map(|(n, b)| if b { Op::A(n) } else { Op::B(n as u8) }),
            1 => (0u8..10).prop_map(Op::B),
        ]) {
            match op {
                Op::A(n) => prop_assert!(n < 100),
                Op::B(b) => prop_assert!(b < 100),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_seq = || {
            let mut rng = TestRng::deterministic("fixed-name");
            let strat = collection::vec(0u64..1000, 1..20);
            (0..10)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(), gen_seq());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_panics() {
        proptest! {
            @impl ProptestConfig::with_cases(4);
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x={} too small", x);
            }
        }
        always_fails();
    }
}
